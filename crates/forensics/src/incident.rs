//! Incident detection and rule-based root-cause classification.
//!
//! Five structural detectors run over the joined streams — admin outages,
//! RTO storms, reorder-triggered spurious backoff, pacing stalls and
//! goodput-collapse windows — plus one objective-level detector that fires
//! whenever the scenario's measured value fell below its counterexample
//! threshold. Each incident carries a **cause chain**: a root (what
//! happened to the network), a mechanism (how the sender reacted) and an
//! effect, e.g. `admin.down → rto_expiry → cwnd_collapse` for a
//! dup-ack/RTO sender knocked out by an outage, versus
//! `displacement → dupack_burst → spurious_fast_rtx` for a sender fooled
//! by reordering — the distinction TCP-PR's timer-driven detection exists
//! to demonstrate.
//!
//! All rules are pure functions of the inputs with total orderings at
//! every step, so the incident list is byte-stable across runs.

use std::collections::BTreeMap;

use netsim::trace::{TraceEventKind, TraceRecord};
use obs::SpanRecord;
use serde::Value;

/// Clustering / evidence radius: events within this horizon are treated as
/// causally adjacent. One second comfortably covers the RTOs and backoff
/// intervals the smoke scenarios produce.
const NEAR_NS: u64 = 1_000_000_000;

/// Bin width for goodput-collapse detection.
const BIN_NS: u64 = 250_000_000;

/// Minimum cluster size for an RTO storm.
const STORM_MIN: usize = 3;

/// Pacer-release gap that counts as a stall.
const STALL_NS: u64 = 500_000_000;

/// Measurement-window context for the detectors: where the scored window
/// sat in sim time, which flow was hunted, and how the scenario scored
/// against its counterexample threshold (when replaying one).
#[derive(Debug, Clone, Default)]
pub struct WindowCtx {
    /// Start of the measurement window (after warmup), ns.
    pub window_start_ns: u64,
    /// End of the measurement window, ns.
    pub window_end_ns: u64,
    /// The flow under investigation (the hunted variant's flow).
    pub hunted_flow: Option<u64>,
    /// Objective name when explaining a counterexample (`goodput`, …).
    pub objective: Option<String>,
    /// Measured objective value of this run.
    pub value: Option<f64>,
    /// The healthy baseline value the threshold derives from.
    pub baseline_value: Option<f64>,
    /// Degradation threshold the counterexample was required to beat.
    pub threshold: Option<f64>,
}

/// One detected incident.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Incident class, e.g. `"rto_storm"` or `"admin_outage"`.
    pub kind: String,
    /// Affected flow; `None` for network-wide incidents.
    pub flow: Option<u64>,
    /// Start of the incident window, ns.
    pub start_ns: u64,
    /// End of the incident window, ns.
    pub end_ns: u64,
    /// Human-readable evidence summary.
    pub detail: String,
    /// Root-cause chain, root first, e.g.
    /// `["admin.down", "rto_expiry", "cwnd_collapse"]`.
    pub cause_chain: Vec<String>,
}

impl Incident {
    /// Serializes one incident.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![("kind".to_owned(), Value::Str(self.kind.clone()))];
        if let Some(flow) = self.flow {
            fields.push(("flow".to_owned(), Value::UInt(flow)));
        }
        fields.push(("start_ns".to_owned(), Value::UInt(self.start_ns)));
        fields.push(("end_ns".to_owned(), Value::UInt(self.end_ns)));
        fields.push((
            "cause_chain".to_owned(),
            Value::Array(self.cause_chain.iter().map(|c| Value::Str(c.clone())).collect()),
        ));
        fields.push(("detail".to_owned(), Value::Str(self.detail.clone())));
        Value::Object(fields)
    }
}

/// Pre-indexed evidence the detectors and the classifier share.
struct Evidence {
    /// Link-down windows `(start, end)`, paired from `admin.*` spans.
    outages: Vec<(u64, u64)>,
    /// Per-flow sorted drop timestamps by cause.
    queue_drops: BTreeMap<u64, Vec<u64>>,
    random_losses: BTreeMap<u64, Vec<u64>>,
    impair_drops: BTreeMap<u64, Vec<u64>>,
    /// Per-flow sorted timestamps of late (reordered) data deliveries.
    late_deliveries: BTreeMap<u64, Vec<u64>>,
    /// Per-flow data deliveries `(at_ns)`, for goodput binning.
    deliveries: BTreeMap<u64, Vec<u64>>,
    /// Per-flow spans by kind, each timestamp-sorted.
    spans: BTreeMap<u64, BTreeMap<&'static str, Vec<u64>>>,
}

fn count_in(sorted: Option<&Vec<u64>>, from_ns: u64, to_ns: u64) -> u64 {
    let Some(v) = sorted else { return 0 };
    let lo = v.partition_point(|&t| t < from_ns);
    let hi = v.partition_point(|&t| t <= to_ns);
    (hi - lo) as u64
}

impl Evidence {
    fn build(trace: &[TraceRecord], spans: &[SpanRecord], end_ns: u64) -> Evidence {
        let mut ev = Evidence {
            outages: Vec::new(),
            queue_drops: BTreeMap::new(),
            random_losses: BTreeMap::new(),
            impair_drops: BTreeMap::new(),
            late_deliveries: BTreeMap::new(),
            deliveries: BTreeMap::new(),
            spans: BTreeMap::new(),
        };
        let mut highest_seq: BTreeMap<u64, u64> = BTreeMap::new();
        for r in trace {
            let flow = r.flow.index() as u64;
            let at = r.at.as_nanos();
            match r.kind {
                TraceEventKind::QueueDrop(_) => ev.queue_drops.entry(flow).or_default().push(at),
                TraceEventKind::RandomLoss(_) => ev.random_losses.entry(flow).or_default().push(at),
                TraceEventKind::ImpairDrop(_) => ev.impair_drops.entry(flow).or_default().push(at),
                TraceEventKind::Delivered(_) if !r.is_ack => {
                    ev.deliveries.entry(flow).or_default().push(at);
                    if let Some(seq) = r.seq {
                        let hi = highest_seq.entry(flow).or_insert(0);
                        if seq < *hi {
                            ev.late_deliveries.entry(flow).or_default().push(at);
                        } else {
                            *hi = seq;
                        }
                    }
                }
                _ => {}
            }
        }
        // Pair admin.down with the next admin.up of the same link. An
        // unpaired down runs to the end of the horizon.
        let mut down_at: BTreeMap<String, u64> = BTreeMap::new();
        for s in spans {
            match s.kind {
                "admin.down" => {
                    down_at.entry(s.detail.clone()).or_insert(s.at_ns);
                }
                "admin.up" => {
                    if let Some(start) = down_at.remove(&s.detail) {
                        ev.outages.push((start, s.at_ns));
                    }
                }
                _ => {}
            }
            if let Some(flow) = s.flow {
                ev.spans.entry(flow).or_default().entry(s.kind).or_default().push(s.at_ns);
            }
        }
        for (_, start) in down_at {
            ev.outages.push((start, end_ns));
        }
        ev.outages.sort_unstable();
        for v in ev
            .queue_drops
            .values_mut()
            .chain(ev.random_losses.values_mut())
            .chain(ev.impair_drops.values_mut())
            .chain(ev.late_deliveries.values_mut())
            .chain(ev.deliveries.values_mut())
        {
            v.sort_unstable();
        }
        for per_kind in ev.spans.values_mut() {
            for v in per_kind.values_mut() {
                v.sort_unstable();
            }
        }
        ev
    }

    fn overlaps_outage(&self, from_ns: u64, to_ns: u64) -> bool {
        self.outages.iter().any(|&(s, e)| s <= to_ns && e >= from_ns)
    }

    fn drops_near(&self, flow: u64, from_ns: u64, to_ns: u64) -> (u64, u64, u64) {
        (
            count_in(self.impair_drops.get(&flow), from_ns, to_ns),
            count_in(self.queue_drops.get(&flow), from_ns, to_ns),
            count_in(self.random_losses.get(&flow), from_ns, to_ns),
        )
    }

    fn lates_near(&self, flow: u64, from_ns: u64, to_ns: u64) -> u64 {
        count_in(self.late_deliveries.get(&flow), from_ns, to_ns)
    }

    fn flow_spans(&self, flow: u64, kind: &str) -> &[u64] {
        self.spans
            .get(&flow)
            .and_then(|per_kind| per_kind.get(kind))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn spans_in(&self, flow: u64, kind: &str, from_ns: u64, to_ns: u64) -> u64 {
        let v = self.flow_spans(flow, kind);
        let lo = v.partition_point(|&t| t < from_ns);
        let hi = v.partition_point(|&t| t <= to_ns);
        (hi - lo) as u64
    }

    /// The network-side root cause for trouble a flow saw in a window:
    /// outage > impairment drops > queue drops > random loss > reordering.
    fn root_cause(&self, flow: u64, from_ns: u64, to_ns: u64) -> String {
        if self.overlaps_outage(from_ns, to_ns) {
            return "admin.down".to_owned();
        }
        let lo = from_ns.saturating_sub(NEAR_NS);
        let (impair, queue, random) = self.drops_near(flow, lo, to_ns);
        if impair > 0 && impair >= queue && impair >= random {
            return "impair_drop".to_owned();
        }
        if queue > 0 && queue >= random {
            return "queue_drop".to_owned();
        }
        if random > 0 {
            return "random_loss".to_owned();
        }
        if self.lates_near(flow, lo, to_ns) > 0 {
            return "displacement".to_owned();
        }
        "unknown".to_owned()
    }

    /// The sender-side mechanism active for a flow in a window.
    fn mechanism(&self, flow: u64, from_ns: u64, to_ns: u64) -> String {
        let rto = self.spans_in(flow, "cc.rto_expiry", from_ns, to_ns);
        let backoff = self.spans_in(flow, "tcppr.backoff_double", from_ns, to_ns)
            + self.spans_in(flow, "tcppr.extreme_loss", from_ns, to_ns);
        let fast = self.spans_in(flow, "cc.fast_rtx", from_ns, to_ns);
        if rto > 0 && rto >= backoff && rto >= fast {
            "rto_expiry".to_owned()
        } else if backoff > 0 && backoff >= fast {
            "timer_backoff".to_owned()
        } else if fast > 0 {
            "dupack_burst".to_owned()
        } else if self.spans_in(flow, "tcppr.halve", from_ns, to_ns) > 0 {
            "timer_halve".to_owned()
        } else {
            "starvation".to_owned()
        }
    }
}

/// Clusters sorted timestamps: points within `NEAR_NS` of the previous one
/// share a cluster.
fn clusters(times: &[u64]) -> Vec<(u64, u64, usize)> {
    let mut out = Vec::new();
    let mut iter = times.iter().copied();
    let Some(first) = iter.next() else { return out };
    let (mut start, mut last, mut n) = (first, first, 1usize);
    for t in iter {
        if t.saturating_sub(last) <= NEAR_NS {
            last = t;
            n += 1;
        } else {
            out.push((start, last, n));
            start = t;
            last = t;
            n = 1;
        }
    }
    out.push((start, last, n));
    out
}

/// Runs every detector and returns the incidents ordered by
/// `(start, end, kind, flow)`.
pub fn detect(trace: &[TraceRecord], spans: &[SpanRecord], ctx: &WindowCtx) -> Vec<Incident> {
    let ev = Evidence::build(trace, spans, ctx.window_end_ns);
    let mut out: Vec<Incident> = Vec::new();

    // 1. Administrative outages: every paired (or unterminated) link-down
    // window is an incident of its own; overlap with per-flow incidents is
    // what promotes "admin.down" to their root cause.
    for &(start, end) in &ev.outages {
        out.push(Incident {
            kind: "admin_outage".to_owned(),
            flow: None,
            start_ns: start,
            end_ns: end,
            detail: format!("link down for {} ms", (end - start) / 1_000_000),
            cause_chain: vec!["admin.down".to_owned(), "tx_blackout".to_owned()],
        });
    }

    let flows: Vec<u64> = ev.spans.keys().copied().chain(ev.deliveries.keys().copied()).collect();
    let mut flows: Vec<u64> = flows;
    flows.sort_unstable();
    flows.dedup();

    for &flow in &flows {
        // 2. RTO storms: ≥ STORM_MIN timer expiries in one cluster. The
        // dup-ack senders surface as `cc.rto_expiry`; TCP-PR's equivalent
        // episode is a run of backoff doublings.
        let mut timer_hits: Vec<u64> = ev.flow_spans(flow, "cc.rto_expiry").to_vec();
        let backoffs = ev.flow_spans(flow, "tcppr.backoff_double");
        timer_hits.extend_from_slice(backoffs);
        timer_hits.sort_unstable();
        let timer_path = !backoffs.is_empty();
        for (start, end, n) in clusters(&timer_hits) {
            if n < STORM_MIN {
                continue;
            }
            let root = ev.root_cause(flow, start, end);
            let mech = if timer_path { "timer_backoff" } else { "rto_expiry" };
            out.push(Incident {
                kind: "rto_storm".to_owned(),
                flow: Some(flow),
                start_ns: start,
                end_ns: end,
                detail: format!("{n} timer expiries in {} ms", (end - start) / 1_000_000 + 1),
                cause_chain: vec![root, mech.to_owned(), "cwnd_collapse".to_owned()],
            });
        }

        // 3. Reorder-triggered spurious backoff: a window reduction with
        // reordering evidence but no drop of this flow's packets in the
        // preceding horizon. Eifel's explicit detections count directly.
        let mut spurious: Vec<(u64, &'static str)> = Vec::new();
        for (kind, mech) in [
            ("cc.fast_rtx", "spurious_fast_rtx"),
            ("tcppr.halve", "spurious_timer_halve"),
            ("eifel.spurious", "spurious_fast_rtx"),
        ] {
            for &t in ev.flow_spans(flow, kind) {
                let lo = t.saturating_sub(NEAR_NS);
                let (impair, queue, random) = ev.drops_near(flow, lo, t);
                let explicit = kind == "eifel.spurious";
                if explicit || (impair + queue + random == 0 && ev.lates_near(flow, lo, t) > 0) {
                    spurious.push((t, mech));
                }
            }
        }
        spurious.sort_unstable();
        let times: Vec<u64> = spurious.iter().map(|&(t, _)| t).collect();
        for (start, end, n) in clusters(&times) {
            let mech = spurious
                .iter()
                .find(|&&(t, _)| t >= start)
                .map(|&(_, m)| m)
                .unwrap_or("spurious_fast_rtx");
            let step = if mech == "spurious_timer_halve" { "timer_expiry" } else { "dupack_burst" };
            out.push(Incident {
                kind: "spurious_backoff".to_owned(),
                flow: Some(flow),
                start_ns: start,
                end_ns: end,
                detail: format!("{n} loss reactions without packet loss"),
                cause_chain: vec!["displacement".to_owned(), step.to_owned(), mech.to_owned()],
            });
        }

        // 4. Pacing stalls: a paced sender that went silent between two
        // releases for longer than STALL_NS.
        let releases = ev.flow_spans(flow, "pacer.release");
        for w in releases.windows(2) {
            let gap = w[1].saturating_sub(w[0]);
            if gap > STALL_NS {
                let root = ev.root_cause(flow, w[0], w[1]);
                out.push(Incident {
                    kind: "pacing_stall".to_owned(),
                    flow: Some(flow),
                    start_ns: w[0],
                    end_ns: w[1],
                    detail: format!("no paced release for {} ms", gap / 1_000_000),
                    cause_chain: vec![root, "pacing_stall".to_owned()],
                });
            }
        }

        // 5. Goodput collapse: per-bin delivery counts over the measurement
        // window; a run of ≥ 2 bins below a quarter of the mean rate is a
        // collapse window.
        if ctx.window_end_ns > ctx.window_start_ns {
            let deliveries = ev.deliveries.get(&flow).map(Vec::as_slice).unwrap_or(&[]);
            let bins = ((ctx.window_end_ns - ctx.window_start_ns) / BIN_NS) as usize;
            if bins >= 4 && !deliveries.is_empty() {
                let mut counts = vec![0u64; bins];
                for &t in deliveries {
                    if t >= ctx.window_start_ns && t < ctx.window_end_ns {
                        counts[((t - ctx.window_start_ns) / BIN_NS) as usize] += 1;
                    }
                }
                let total: u64 = counts.iter().sum();
                let mean = total as f64 / bins as f64;
                let floor = mean * 0.25;
                let mut i = 0;
                while i < bins {
                    if (counts[i] as f64) < floor {
                        let run_start = i;
                        while i < bins && (counts[i] as f64) < floor {
                            i += 1;
                        }
                        if i - run_start >= 2 {
                            let start = ctx.window_start_ns + run_start as u64 * BIN_NS;
                            let end = ctx.window_start_ns + i as u64 * BIN_NS;
                            let root = ev.root_cause(flow, start, end);
                            let mech = ev.mechanism(flow, start.saturating_sub(NEAR_NS), end);
                            out.push(Incident {
                                kind: "goodput_collapse".to_owned(),
                                flow: Some(flow),
                                start_ns: start,
                                end_ns: end,
                                detail: format!(
                                    "{} ms below 25% of mean delivery rate",
                                    (end - start) / 1_000_000
                                ),
                                cause_chain: vec![root, mech, "goodput_collapse".to_owned()],
                            });
                        }
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    // 6. Objective degradation: the scenario scored below its
    // counterexample threshold — attribute the whole measurement window.
    if let (Some(value), Some(threshold)) = (ctx.value, ctx.threshold) {
        if value < threshold {
            let flow = ctx.hunted_flow.unwrap_or(0);
            let root = ev.root_cause(flow, ctx.window_start_ns, ctx.window_end_ns);
            let mech = ev.mechanism(flow, 0, ctx.window_end_ns);
            let effect = match ctx.objective.as_deref() {
                Some("fairness") => "fairness_below_threshold",
                _ => "goodput_below_threshold",
            };
            out.push(Incident {
                kind: "objective_degradation".to_owned(),
                flow: Some(flow),
                start_ns: ctx.window_start_ns,
                end_ns: ctx.window_end_ns,
                detail: format!(
                    "measured {value:.4} vs threshold {threshold:.4} (baseline {:.4})",
                    ctx.baseline_value.unwrap_or(f64::NAN)
                ),
                cause_chain: vec![root, mech, effect.to_owned()],
            });
        }
    }

    out.sort_by(|a, b| {
        (a.start_ns, a.end_ns, &a.kind, a.flow).cmp(&(b.start_ns, b.end_ns, &b.kind, b.flow))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(at_ns: u64, kind: &'static str, flow: Option<u64>) -> SpanRecord {
        SpanRecord { at_ns, kind, detail: "link=1".to_owned(), flow }
    }

    fn ctx() -> WindowCtx {
        WindowCtx {
            window_start_ns: 1_000_000_000,
            window_end_ns: 5_000_000_000,
            hunted_flow: Some(0),
            ..WindowCtx::default()
        }
    }

    #[test]
    fn outage_plus_rto_storm_classifies_as_admin_root() {
        let spans = vec![
            span(1_500_000_000, "admin.down", None),
            span(3_500_000_000, "admin.up", None),
            span(1_600_000_000, "cc.rto_expiry", Some(0)),
            span(2_300_000_000, "cc.rto_expiry", Some(0)),
            span(3_000_000_000, "cc.rto_expiry", Some(0)),
        ];
        let incidents = detect(&[], &spans, &ctx());
        let outage = incidents.iter().find(|i| i.kind == "admin_outage").expect("outage");
        assert_eq!(outage.end_ns, 3_500_000_000);
        let storm = incidents.iter().find(|i| i.kind == "rto_storm").expect("storm");
        assert_eq!(
            storm.cause_chain,
            vec!["admin.down".to_owned(), "rto_expiry".to_owned(), "cwnd_collapse".to_owned()]
        );
    }

    #[test]
    fn unpaired_down_extends_to_horizon() {
        let spans = vec![span(2_000_000_000, "admin.down", None)];
        let incidents = detect(&[], &spans, &ctx());
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].end_ns, 5_000_000_000);
    }

    #[test]
    fn objective_degradation_always_has_a_chain() {
        let c = WindowCtx {
            value: Some(0.2),
            threshold: Some(1.0),
            baseline_value: Some(2.0),
            objective: Some("goodput".to_owned()),
            ..ctx()
        };
        let incidents = detect(&[], &[], &c);
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].kind, "objective_degradation");
        assert_eq!(incidents[0].cause_chain.len(), 3);
        assert_eq!(incidents[0].cause_chain[2], "goodput_below_threshold");
    }

    #[test]
    fn storm_needs_three_hits() {
        let spans = vec![
            span(1_600_000_000, "cc.rto_expiry", Some(0)),
            span(2_300_000_000, "cc.rto_expiry", Some(0)),
        ];
        assert!(detect(&[], &spans, &ctx()).is_empty());
    }
}
