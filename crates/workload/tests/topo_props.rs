//! Property tests over the topology generators: every generated graph —
//! any model parameters, any seed — must be connected, carry sane per-link
//! parameters, route loop-free between all host pairs, and regenerate
//! byte-identically from the same `(model, seed)` (the foundation of the
//! sweep engine's any-`--jobs` determinism).

use netsim::routing::Routing;
use proptest::prelude::*;
use workload::TopologyModel;

/// Builds a bounded-size model from integer-sampled parameters so the
/// all-pairs route walk stays cheap: fat-trees up to k=6 (54 hosts), AS
/// graphs up to 48 nodes. `family` picks the generator.
fn model(family: u8, half_k: u32, nodes: u32, edges_per_node: u32) -> TopologyModel {
    if family == 0 {
        TopologyModel::FatTree { k: 2 * half_k }
    } else {
        TopologyModel::AsGraph { nodes: nodes.max(edges_per_node + 1), edges_per_node }
    }
}

proptest! {
    #[test]
    fn generated_graphs_are_connected_with_sane_links(
        family in 0u8..2,
        half_k in 1u32..=3,
        nodes in 4u32..=48,
        epn in 1u32..=3,
        seed in 0u64..1_000_000,
    ) {
        let m = model(family, half_k, nodes, epn);
        let t = m.generate(seed);
        prop_assert!(t.is_connected(), "{m:?} seed {seed} is disconnected");
        prop_assert!(!t.hosts.is_empty());
        for (i, l) in t.links.iter().enumerate() {
            prop_assert!(l.a < t.node_count && l.b < t.node_count && l.a != l.b,
                "{m:?} link {i} has bad endpoints {}-{}", l.a, l.b);
            prop_assert!(l.mbps > 0.0, "{m:?} link {i} has no bandwidth");
            prop_assert!(l.delay_us > 0, "{m:?} link {i} has zero delay");
            prop_assert!(l.queue_packets > 0, "{m:?} link {i} has no queue");
        }
    }

    #[test]
    fn shortest_path_routing_is_loop_free_between_all_host_pairs(
        family in 0u8..2,
        half_k in 1u32..=3,
        nodes in 4u32..=48,
        epn in 1u32..=3,
        seed in 0u64..1_000_000,
    ) {
        let m = model(family, half_k, nodes, epn);
        let t = m.generate(seed);
        let routing = Routing::shortest_path(&t.routing_graph());
        for &src in &t.hosts {
            for &dst in &t.hosts {
                if src == dst {
                    continue;
                }
                let hops = t.walk_route(&routing, src, dst);
                prop_assert!(
                    hops.is_some_and(|h| h <= t.node_count),
                    "{m:?} seed {seed}: route {src}->{dst} loops or dead-ends"
                );
            }
        }
    }

    #[test]
    fn generation_is_reproducible_and_seed_sensitive(
        family in 0u8..2,
        half_k in 1u32..=3,
        nodes in 4u32..=48,
        epn in 1u32..=3,
        seed in 0u64..1_000_000,
    ) {
        let m = model(family, half_k, nodes, epn);
        let a = m.generate(seed);
        let b = m.generate(seed);
        prop_assert_eq!(&a, &b, "same (model, seed) must regenerate identically");
        // A different seed keeps the structure family but redraws link
        // parameters (delays are jittered per-link).
        let c = m.generate(seed ^ 0x9e37_79b9_7f4a_7c15);
        prop_assert_eq!(a.node_count, c.node_count);
        prop_assert!(a.links != c.links, "{m:?}: link draws must move with the seed");
    }
}
