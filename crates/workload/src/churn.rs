//! Poisson flow churn over a multiplexing agent pair.
//!
//! The naive way to simulate 10k concurrent flows — 10k sender agents —
//! drowns in per-agent state (every TCP sender carries maps, traces and
//! timers). The churn engine instead multiplexes *logical* flows over one
//! [`ChurnSource`]/[`ChurnSink`] agent pair per host pair, the way
//! [`netsim::traffic::OnOffSource`] multiplexes on/off bursts over one
//! timer:
//!
//! - **Arrivals** are a Poisson process (exponential inter-arrival times
//!   from the pair's seeded RNG) plus an initial population, so a target
//!   concurrency is reached at t = 0 and sustained by churn.
//! - **Service** is processor sharing: the source paces packets at a fixed
//!   aggregate rate and deals them round-robin over the active flows, so a
//!   flow's completion time stretches with the concurrency it experienced
//!   — the classic flow-level model of a shared bottleneck.
//! - **Departures** happen when a flow's last packet is emitted; its
//!   completion time and goodput fold into streaming accumulators
//!   ([`ChurnStats`]) and its slab slot is recycled.
//!
//! Per-flow state is one fixed-size [`LogicalFlow`] slab entry plus one
//! index in the active list — no per-flow `Vec` ever grows, which keeps
//! memory per concurrent flow flat and measurable
//! ([`ChurnSource::state_bytes`]).

use std::any::Any;

use netsim::agent::{Agent, AgentCtx};
use netsim::packet::{DataHeader, Packet, PacketKind};
use netsim::time::{SimDuration, SimTime};
use netsim::NodeId;
use obs::LogHistogram;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::dist::SizeDist;
use crate::stats::Streaming;

/// Configuration of one churn source (one host pair's flow population).
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Destination host (where the paired [`ChurnSink`] lives).
    pub dst: NodeId,
    /// Aggregate pacing rate shared by this pair's active flows, bits/s.
    pub rate_bps: f64,
    /// Size of every emitted packet, bytes.
    pub packet_bytes: u32,
    /// Flows spawned at t = 0 (the initial population).
    pub initial_flows: u32,
    /// Poisson arrival intensity of new flows, per second.
    pub arrival_rate_hz: f64,
    /// Flow-size distribution, packets per flow.
    pub sizes: SizeDist,
    /// Seed of this pair's private RNG (derive per pair, e.g. with
    /// [`netsim::derive_seed`]).
    pub seed: u64,
}

/// Fixed-size per-flow record: the entire state a logical flow ever owns.
#[derive(Debug, Clone, Copy)]
struct LogicalFlow {
    /// Packets still to emit.
    remaining: u32,
    /// Total size, packets.
    size: u32,
    /// Arrival instant.
    started: SimTime,
}

/// Streaming accumulators over a churn population (per source; merge
/// across sources in a fixed order for deterministic totals).
#[derive(Debug, Clone, Default)]
pub struct ChurnStats {
    /// Flows that arrived (initial population + Poisson arrivals).
    pub arrivals: u64,
    /// Flows that ran to completion (departures).
    pub completions: u64,
    /// Largest number of simultaneously active flows.
    pub peak_active: u64,
    /// Packets emitted.
    pub packets_sent: u64,
    /// Bytes emitted.
    pub bytes_sent: u64,
    /// Per-completed-flow goodput samples (bits/s = size / completion time).
    pub goodput_bps: Streaming,
    /// Flow completion times, microseconds (exact integer buckets).
    pub fct_us: LogHistogram,
}

impl ChurnStats {
    /// Folds another population's accumulators in (fixed merge order is
    /// the caller's responsibility, see [`Streaming::merge`]).
    pub fn merge(&mut self, other: &ChurnStats) {
        self.arrivals += other.arrivals;
        self.completions += other.completions;
        self.peak_active += other.peak_active;
        self.packets_sent += other.packets_sent;
        self.bytes_sent += other.bytes_sent;
        self.goodput_bps.merge(&other.goodput_bps);
        self.fct_us.absorb(&other.fct_us);
    }
}

/// The multiplexing flow-population source agent.
#[derive(Debug)]
pub struct ChurnSource {
    cfg: ChurnConfig,
    rng: SmallRng,
    /// Packet emission interval at the aggregate pacing rate.
    gap: SimDuration,
    /// Slab of per-flow records; completed slots are recycled via `free`.
    slab: Vec<LogicalFlow>,
    free: Vec<u32>,
    /// Slot indices of active flows (round-robin service order).
    active: Vec<u32>,
    cursor: usize,
    /// Whether the emission timer is armed.
    ticking: bool,
    seq: u64,
    stats: ChurnStats,
}

impl ChurnSource {
    /// Creates a source for one pair.
    pub fn new(cfg: ChurnConfig) -> Self {
        assert!(cfg.rate_bps > 0.0, "churn pacing rate must be positive");
        assert!(cfg.arrival_rate_hz >= 0.0, "arrival rate cannot be negative");
        let gap_s = cfg.packet_bytes as f64 * 8.0 / cfg.rate_bps;
        ChurnSource {
            rng: SmallRng::seed_from_u64(cfg.seed),
            gap: SimDuration::from_nanos((gap_s * 1e9).round().max(1.0) as u64),
            slab: Vec::new(),
            free: Vec::new(),
            active: Vec::new(),
            cursor: 0,
            ticking: false,
            seq: 0,
            stats: ChurnStats::default(),
            cfg,
        }
    }

    /// The population accumulators.
    pub fn stats(&self) -> &ChurnStats {
        &self.stats
    }

    /// Bytes of engine state attributable to the flow population: the
    /// slab, the free list and the active list (capacities, i.e. what is
    /// actually allocated). This is the numerator of the bytes-per-flow
    /// flat-memory metric.
    pub fn state_bytes(&self) -> u64 {
        (self.slab.capacity() * std::mem::size_of::<LogicalFlow>()
            + (self.free.capacity() + self.active.capacity()) * std::mem::size_of::<u32>())
            as u64
    }

    fn spawn_flow(&mut self, now: SimTime) {
        let size = self.cfg.sizes.sample(&mut self.rng).max(1) as u32;
        let flow = LogicalFlow { remaining: size, size, started: now };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = flow;
                s
            }
            None => {
                self.slab.push(flow);
                (self.slab.len() - 1) as u32
            }
        };
        self.active.push(slot);
        self.stats.arrivals += 1;
        self.stats.peak_active = self.stats.peak_active.max(self.active.len() as u64);
    }

    fn arm_emission(&mut self, ctx: &mut AgentCtx<'_>) {
        if !self.ticking && !self.active.is_empty() {
            ctx.set_timer(ctx.now + self.gap);
            self.ticking = true;
        }
    }

    fn arm_next_arrival(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.cfg.arrival_rate_hz <= 0.0 {
            return;
        }
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let gap_s = -u.ln() / self.cfg.arrival_rate_hz;
        ctx.set_aux_timer(ctx.now + SimDuration::from_nanos((gap_s * 1e9).round() as u64));
    }

    fn emit_one(&mut self, ctx: &mut AgentCtx<'_>) {
        debug_assert!(!self.active.is_empty());
        if self.cursor >= self.active.len() {
            self.cursor = 0;
        }
        let slot = self.active[self.cursor] as usize;
        ctx.send(
            self.cfg.dst,
            self.cfg.packet_bytes,
            PacketKind::Data(DataHeader {
                seq: self.seq,
                is_retransmit: false,
                tx_count: 1,
                timestamp: ctx.now,
            }),
        );
        self.seq += 1;
        self.stats.packets_sent += 1;
        self.stats.bytes_sent += self.cfg.packet_bytes as u64;
        let f = &mut self.slab[slot];
        f.remaining -= 1;
        if f.remaining == 0 {
            let fct = ctx.now.saturating_since(f.started).max(self.gap);
            let bytes = f.size as u64 * self.cfg.packet_bytes as u64;
            self.stats.completions += 1;
            self.stats.fct_us.record((fct.as_nanos() / 1_000).max(1));
            self.stats.goodput_bps.push(bytes as f64 * 8.0 / fct.as_secs_f64());
            // Swap-remove keeps service O(1); the element swapped into
            // `cursor` is served next, which is deterministic.
            self.active.swap_remove(self.cursor);
            self.free.push(slot as u32);
        } else {
            self.cursor += 1;
        }
    }
}

impl Agent for ChurnSource {
    fn on_start(&mut self, ctx: &mut AgentCtx<'_>) {
        for _ in 0..self.cfg.initial_flows {
            self.spawn_flow(ctx.now);
        }
        self.arm_emission(ctx);
        self.arm_next_arrival(ctx);
    }

    fn on_packet(&mut self, _packet: Packet, _ctx: &mut AgentCtx<'_>) {}

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.active.is_empty() {
            // Idle: stop ticking; the next arrival re-arms.
            self.ticking = false;
            return;
        }
        self.emit_one(ctx);
        if self.active.is_empty() {
            self.ticking = false;
        } else {
            ctx.set_timer(ctx.now + self.gap);
        }
    }

    fn on_aux_timer(&mut self, ctx: &mut AgentCtx<'_>) {
        self.spawn_flow(ctx.now);
        self.arm_emission(ctx);
        self.arm_next_arrival(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Counting sink for a churn source's packets.
#[derive(Debug, Default)]
pub struct ChurnSink {
    /// Packets delivered.
    pub packets: u64,
    /// Bytes delivered.
    pub bytes: u64,
}

impl ChurnSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        ChurnSink::default()
    }
}

impl Agent for ChurnSink {
    fn on_start(&mut self, _ctx: &mut AgentCtx<'_>) {}

    fn on_packet(&mut self, packet: Packet, _ctx: &mut AgentCtx<'_>) {
        self.packets += 1;
        self.bytes += packet.size_bytes as u64;
    }

    fn on_timer(&mut self, _ctx: &mut AgentCtx<'_>) {}

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::link::LinkConfig;
    use netsim::sim::SimBuilder;
    use netsim::FlowId;

    fn run_pair(cfg_seed: u64, sim_seed: u64, secs: f64) -> (ChurnStats, u64, u64) {
        run_pair_at(cfg_seed, sim_seed, secs, 40.0)
    }

    fn run_pair_at(
        cfg_seed: u64,
        sim_seed: u64,
        secs: f64,
        arrival_rate_hz: f64,
    ) -> (ChurnStats, u64, u64) {
        let mut b = SimBuilder::new(sim_seed);
        let a = b.add_node();
        let c = b.add_node();
        b.add_duplex(a, c, LinkConfig::mbps_ms(50.0, 5, 256));
        let mut sim = b.build();
        let cfg = ChurnConfig {
            dst: c,
            rate_bps: 10e6,
            packet_bytes: 1000,
            initial_flows: 50,
            arrival_rate_hz,
            sizes: SizeDist::BoundedPareto { alpha: 1.3, min: 2, max: 500 },
            seed: cfg_seed,
        };
        let flow = FlowId::from_raw(7);
        let src_id = sim.add_agent(a, flow, Box::new(ChurnSource::new(cfg)));
        let sink_id = sim.add_agent(c, flow, Box::new(ChurnSink::new()));
        sim.start();
        sim.run_until(SimTime::from_secs_f64(secs));
        let src = sim.agent(src_id).as_any().downcast_ref::<ChurnSource>().unwrap();
        let sink = sim.agent(sink_id).as_any().downcast_ref::<ChurnSink>().unwrap();
        (src.stats().clone(), src.state_bytes(), sink.bytes)
    }

    #[test]
    fn churn_completes_flows_and_sustains_population() {
        let (stats, state_bytes, delivered) = run_pair(3, 1, 5.0);
        assert!(stats.completions > 50, "churn must complete flows: {}", stats.completions);
        assert!(stats.arrivals > stats.completions, "population persists");
        assert!(stats.peak_active >= 50, "initial population counts");
        assert_eq!(stats.fct_us.count, stats.completions);
        assert!(stats.goodput_bps.jain().is_some());
        assert!(delivered > 0, "sink sees traffic");
        // Flat memory: well under 100 bytes of engine state per peak flow.
        assert!(
            state_bytes < stats.peak_active * 100,
            "state {state_bytes} B for peak {} flows",
            stats.peak_active
        );
    }

    #[test]
    fn pacing_rate_bounds_emission() {
        // Overloaded: 300 arrivals/s of ~7-packet flows offer more than the
        // 10 Mbit/s pacing rate can serve, so the source runs saturated.
        let (stats, _, _) = run_pair_at(3, 1, 5.0, 300.0);
        // 10 Mbit/s of 1000-byte packets for 5 s = at most 6250 packets.
        assert!(stats.packets_sent <= 6_250, "pacing cap exceeded: {}", stats.packets_sent);
        assert!(stats.packets_sent > 5_500, "the saturated source should stay near its rate");
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let (a, ab, _) = run_pair(9, 2, 3.0);
        let (b, bb, _) = run_pair(9, 2, 3.0);
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.packets_sent, b.packets_sent);
        assert_eq!(a.fct_us, b.fct_us);
        assert_eq!(a.goodput_bps, b.goodput_bps);
        assert_eq!(ab, bb);
        let (c, _, _) = run_pair(10, 2, 3.0);
        assert_ne!(a.fct_us, c.fct_us, "a different churn seed draws a different population");
    }
}
