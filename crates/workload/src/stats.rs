//! Streaming population statistics.
//!
//! At 10k+ concurrent flows, per-flow sample vectors are exactly the
//! memory growth the churn engine is designed to avoid. Everything the
//! population metrics need reduces to three running sums — `n`, `Σx`,
//! `Σx²` — which give both Jain's fairness index
//! `(Σx)² / (n · Σx²)` and the coefficient of variation incrementally,
//! in O(1) memory. (The two are tied: `J = 1 / (1 + CoV²)`.)
//! Flow-completion-time quantiles come from the exact integer
//! [`obs::LogHistogram`], merged bucket-wise in a fixed order.

use serde::{Serialize, Value};

/// Incremental first/second-moment accumulator over f64 samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Streaming {
    /// Number of samples folded in.
    pub n: u64,
    sum: f64,
    sumsq: f64,
}

impl Streaming {
    /// Folds one sample in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.sumsq += x * x;
    }

    /// Folds another accumulator in. Callers that need bit-reproducible
    /// results must merge in a fixed order (floating-point addition is not
    /// associative); the scale harness merges per-pair accumulators in
    /// pair-index order.
    pub fn merge(&mut self, other: &Streaming) {
        self.n += other.n;
        self.sum += other.sum;
        self.sumsq += other.sumsq;
    }

    /// Sample mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }

    /// Jain's fairness index `(Σx)² / (n · Σx²)` over the samples so far:
    /// 1.0 for perfectly equal allocations, `1/n` in the worst case.
    /// `None` when empty or all-zero.
    pub fn jain(&self) -> Option<f64> {
        (self.n > 0 && self.sumsq > 0.0)
            .then(|| (self.sum * self.sum) / (self.n as f64 * self.sumsq))
    }

    /// Coefficient of variation (population standard deviation over mean).
    /// `None` when empty or the mean is not positive.
    pub fn cov(&self) -> Option<f64> {
        let mean = self.mean()?;
        if mean <= 0.0 {
            return None;
        }
        let var = (self.sumsq / self.n as f64 - mean * mean).max(0.0);
        Some(var.sqrt() / mean)
    }
}

impl Serialize for Streaming {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("n".to_owned(), Value::UInt(self.n)),
            ("mean".to_owned(), Value::Float(self.mean().unwrap_or(0.0))),
            ("jain".to_owned(), Value::Float(self.jain().unwrap_or(0.0))),
            ("cov".to_owned(), Value::Float(self.cov().unwrap_or(0.0))),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_samples_are_perfectly_fair() {
        let mut s = Streaming::default();
        for _ in 0..10 {
            s.push(5.0);
        }
        assert!((s.jain().unwrap() - 1.0).abs() < 1e-12);
        assert!(s.cov().unwrap() < 1e-9);
        assert_eq!(s.mean(), Some(5.0));
    }

    #[test]
    fn one_hog_gives_one_over_n() {
        let mut s = Streaming::default();
        s.push(10.0);
        for _ in 0..9 {
            s.push(0.0);
        }
        assert!((s.jain().unwrap() - 0.1).abs() < 1e-12, "1/n fairness floor");
    }

    #[test]
    fn incremental_matches_batch() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = Streaming::default();
        for &x in &xs {
            s.push(x);
        }
        let sum: f64 = xs.iter().sum();
        let sumsq: f64 = xs.iter().map(|x| x * x).sum();
        let jain = sum * sum / (xs.len() as f64 * sumsq);
        assert!((s.jain().unwrap() - jain).abs() < 1e-12);
        // Identity check: J = 1 / (1 + CoV²).
        let cov = s.cov().unwrap();
        assert!((s.jain().unwrap() - 1.0 / (1.0 + cov * cov)).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_concatenation() {
        let (mut a, mut b, mut all) =
            (Streaming::default(), Streaming::default(), Streaming::default());
        for i in 0..5 {
            a.push(i as f64);
            all.push(i as f64);
        }
        for i in 5..9 {
            b.push(i as f64);
            all.push(i as f64);
        }
        a.merge(&b);
        assert_eq!(a.n, all.n);
        assert!((a.jain().unwrap() - all.jain().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_degenerate_cases_are_none() {
        let s = Streaming::default();
        assert_eq!(s.mean(), None);
        assert_eq!(s.jain(), None);
        assert_eq!(s.cov(), None);
        let mut zeros = Streaming::default();
        zeros.push(0.0);
        assert_eq!(zeros.jain(), None);
        assert_eq!(zeros.cov(), None);
    }
}
