//! Seeded topology generators: k-ary fat-trees and AS-like random graphs.
//!
//! A [`TopologyModel`] is a tiny `Copy` description (suitable for content
//! hashing in a scenario spec); [`TopologyModel::generate`] expands it into
//! a concrete [`GeneratedTopology`] — node count, host list, duplex link
//! list with per-link bandwidth/delay/queue parameters. Expansion is a
//! pure function of `(model, seed)`: structural choices and per-link
//! parameter draws are keyed by [`netsim::derive_seed`] over stable
//! indices, never by iteration order of a hash map or by wall clock, so
//! two workers generating the same spec produce byte-identical setups.

use netsim::derive_seed;
use netsim::link::LinkConfig;
use netsim::routing::{Graph, Routing};
use netsim::sim::SimBuilder;
use netsim::time::SimDuration;
use netsim::{LinkId, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A generative topology family, parameterized just enough to be hashed
/// into a scenario spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyModel {
    /// A k-ary fat-tree data-center fabric: `k` pods of `k/2` edge and
    /// `k/2` aggregation switches, `(k/2)²` core switches, `k³/4` hosts.
    /// `k` must be even and ≥ 2.
    FatTree {
        /// Fat-tree arity (even, ≥ 2).
        k: u32,
    },
    /// An AS-like random graph grown by preferential attachment
    /// (Barabási–Albert style): high-degree hubs emerge, matching the
    /// heavy-tailed degree distributions of Internet AS maps.
    AsGraph {
        /// Total node count (≥ `edges_per_node + 1`).
        nodes: u32,
        /// Edges each newly attached node brings (≥ 1).
        edges_per_node: u32,
    },
}

impl TopologyModel {
    /// Short stable label used in scenario labels and artifacts.
    pub fn label(self) -> String {
        match self {
            TopologyModel::FatTree { k } => format!("fat-tree-k{k}"),
            TopologyModel::AsGraph { nodes, edges_per_node } => {
                format!("as-{nodes}x{edges_per_node}")
            }
        }
    }

    /// Expands the model into a concrete topology. Deterministic in
    /// `(self, seed)`.
    pub fn generate(self, seed: u64) -> GeneratedTopology {
        match self {
            TopologyModel::FatTree { k } => fat_tree(k, seed),
            TopologyModel::AsGraph { nodes, edges_per_node } => {
                as_graph(nodes, edges_per_node, seed)
            }
        }
    }
}

/// One duplex link of a generated topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenLink {
    /// One endpoint (node index).
    pub a: usize,
    /// The other endpoint (node index).
    pub b: usize,
    /// Bandwidth, Mbit/s (both directions).
    pub mbps: f64,
    /// One-way propagation delay, microseconds.
    pub delay_us: u64,
    /// Drop-tail queue capacity, packets.
    pub queue_packets: usize,
}

/// A concrete generated topology, ready to materialize into a
/// [`SimBuilder`].
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedTopology {
    /// Total node count (hosts + switches).
    pub node_count: usize,
    /// Indices of traffic-endpoint nodes, in generation order.
    pub hosts: Vec<usize>,
    /// Duplex links.
    pub links: Vec<GenLink>,
}

/// Node ids and link ids of a materialized topology.
#[derive(Debug, Clone)]
pub struct Materialized {
    /// `nodes[i]` is the simulator node for topology node index `i`.
    pub nodes: Vec<NodeId>,
    /// `(forward, reverse)` simulator links per [`GeneratedTopology::links`]
    /// entry.
    pub links: Vec<(LinkId, LinkId)>,
}

impl GeneratedTopology {
    /// Adds the topology's nodes and duplex links to a builder. Routing
    /// (shortest path by delay, deterministic tie-breaks) is computed by
    /// the builder itself.
    pub fn materialize(&self, b: &mut SimBuilder) -> Materialized {
        let nodes = b.add_nodes(self.node_count);
        let links = self
            .links
            .iter()
            .map(|l| {
                b.add_duplex(
                    nodes[l.a],
                    nodes[l.b],
                    LinkConfig::new(
                        l.mbps * 1e6,
                        SimDuration::from_micros(l.delay_us),
                        l.queue_packets,
                    ),
                )
            })
            .collect();
        Materialized { nodes, links }
    }

    /// Whether every node is reachable from node 0 over the duplex links.
    pub fn is_connected(&self) -> bool {
        if self.node_count == 0 {
            return true;
        }
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.node_count];
        for l in &self.links {
            adj[l.a].push(l.b);
            adj[l.b].push(l.a);
        }
        let mut seen = vec![false; self.node_count];
        let mut frontier = vec![0usize];
        seen[0] = true;
        let mut visited = 1usize;
        while let Some(n) = frontier.pop() {
            for &m in &adj[n] {
                if !seen[m] {
                    seen[m] = true;
                    visited += 1;
                    frontier.push(m);
                }
            }
        }
        visited == self.node_count
    }

    /// The routing graph of this topology (two directed edges per duplex
    /// link, in link order — matching [`Self::materialize`]'s id
    /// assignment). Exposed for loop-freedom checks on the shortest-path
    /// tables the simulator will use.
    pub fn routing_graph(&self) -> Graph {
        let edges: Vec<(NodeId, NodeId, LinkId, SimDuration)> = self
            .links
            .iter()
            .enumerate()
            .flat_map(|(i, l)| {
                let a = NodeId::from_raw(l.a as u32);
                let b = NodeId::from_raw(l.b as u32);
                let d = SimDuration::from_micros(l.delay_us);
                [
                    (a, b, LinkId::from_raw((2 * i) as u32), d),
                    (b, a, LinkId::from_raw((2 * i + 1) as u32), d),
                ]
            })
            .collect();
        Graph::new(self.node_count, &edges)
    }

    /// Walks shortest-path next hops from `src` to `dst`, returning the
    /// hop count, or `None` if the walk revisits a node or exceeds the
    /// node count (a routing loop) or dead-ends before `dst`.
    pub fn walk_route(&self, routing: &Routing, src: usize, dst: usize) -> Option<usize> {
        let dst_id = NodeId::from_raw(dst as u32);
        let mut at = src;
        let mut visited = vec![false; self.node_count];
        let mut hops = 0usize;
        while at != dst {
            if visited[at] {
                return None; // loop
            }
            visited[at] = true;
            let link = routing.next_hop(NodeId::from_raw(at as u32), dst_id)?;
            let idx = link.index();
            let l = &self.links[idx / 2];
            at = if idx % 2 == 0 { l.b } else { l.a };
            hops += 1;
            if hops > self.node_count {
                return None;
            }
        }
        Some(hops)
    }
}

/// Per-tier base parameters of the fat-tree fabric. Hosts uplink at
/// 20 Mbit/s; the fabric is non-blocking above that, so the interesting
/// contention is at the edges — where the churn population lives.
const HOST_MBPS: f64 = 20.0;
const EDGE_AGG_MBPS: f64 = 40.0;
const AGG_CORE_MBPS: f64 = 80.0;

/// Draws a jittered delay: `base_us` ± 25%, keyed by the link's derived
/// seed so the draw is independent of every other link's.
fn jittered_delay(base_us: u64, rng: &mut SmallRng) -> u64 {
    let f: f64 = rng.gen_range(0.75..1.25);
    ((base_us as f64 * f) as u64).max(1)
}

/// Per-link RNG: one independent deterministic stream per link index.
fn link_rng(seed: u64, link_index: usize) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(seed, link_index as u32))
}

fn fat_tree(k: u32, seed: u64) -> GeneratedTopology {
    assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even and >= 2, got {k}");
    let k = k as usize;
    let half = k / 2;
    let cores = half * half;
    // Node layout: [cores][per pod: half agg, half edge, half*half hosts].
    let pod_stride = half + half + half * half;
    let node_count = cores + k * pod_stride;
    let agg = |pod: usize, i: usize| cores + pod * pod_stride + i;
    let edge = |pod: usize, i: usize| cores + pod * pod_stride + half + i;
    let host = |pod: usize, e: usize, h: usize| cores + pod * pod_stride + 2 * half + e * half + h;

    let mut links = Vec::new();
    let mut push = |a: usize, b: usize, mbps: f64, base_us: u64, queue: usize| {
        let mut rng = link_rng(seed, links.len());
        links.push(GenLink {
            a,
            b,
            mbps,
            delay_us: jittered_delay(base_us, &mut rng),
            queue_packets: queue,
        });
    };
    for pod in 0..k {
        for e in 0..half {
            for h in 0..half {
                push(host(pod, e, h), edge(pod, e), HOST_MBPS, 20, 64);
            }
            for a in 0..half {
                push(edge(pod, e), agg(pod, a), EDGE_AGG_MBPS, 50, 128);
            }
        }
        for a in 0..half {
            for c in 0..half {
                push(agg(pod, a), a * half + c, AGG_CORE_MBPS, 50, 128);
            }
        }
    }
    let hosts = (0..k)
        .flat_map(|p| (0..half).flat_map(move |e| (0..half).map(move |h| (p, e, h))))
        .map(|(p, e, h)| host(p, e, h))
        .collect();
    GeneratedTopology { node_count, hosts, links }
}

fn as_graph(nodes: u32, edges_per_node: u32, seed: u64) -> GeneratedTopology {
    let n = nodes as usize;
    let m = edges_per_node as usize;
    assert!(m >= 1, "AS graph needs at least one edge per node");
    assert!(n > m, "AS graph needs more than edges_per_node + 1 nodes, got {n}");
    // Attachment choices draw from their own stream, distinct from every
    // per-link parameter stream (which use the link's index).
    let mut attach_rng = SmallRng::seed_from_u64(derive_seed(seed, u32::MAX));
    let mut links: Vec<GenLink> = Vec::new();
    // Repeated-endpoint list: each node appears once per incident edge, so
    // a uniform draw over it is degree-proportional attachment.
    let mut endpoints: Vec<usize> = Vec::new();
    let push = |a: usize, b: usize, endpoints: &mut Vec<usize>, links: &mut Vec<GenLink>| {
        let mut rng = link_rng(seed, links.len());
        let mbps: f64 = rng.gen_range(30.0..80.0);
        let delay_us = rng.gen_range(200..2_000u64);
        links.push(GenLink { a, b, mbps, delay_us, queue_packets: 128 });
        endpoints.push(a);
        endpoints.push(b);
    };
    // Seed clique over the first m+1 nodes.
    for a in 0..=m {
        for b in (a + 1)..=m {
            push(a, b, &mut endpoints, &mut links);
        }
    }
    // Grow: each new node attaches to m distinct degree-weighted targets.
    for v in (m + 1)..n {
        let mut targets: Vec<usize> = Vec::with_capacity(m);
        while targets.len() < m {
            let t = endpoints[attach_rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            push(v, t, &mut endpoints, &mut links);
        }
    }
    let hosts = (0..n).collect();
    GeneratedTopology { node_count: n, hosts, links }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_has_the_textbook_shape() {
        let t = TopologyModel::FatTree { k: 4 }.generate(7);
        // k = 4: 16 hosts, 4 cores, 8 agg + 8 edge switches.
        assert_eq!(t.hosts.len(), 16);
        assert_eq!(t.node_count, 4 + 4 * (2 + 2 + 4));
        // k³/4 host links + k²/2·k/2 edge-agg + k·(k/2)² agg-core duplex links.
        assert_eq!(t.links.len(), 16 + 16 + 16);
        assert!(t.is_connected());
    }

    #[test]
    fn as_graph_is_connected_and_sized() {
        let t = TopologyModel::AsGraph { nodes: 40, edges_per_node: 2 }.generate(11);
        assert_eq!(t.node_count, 40);
        assert_eq!(t.hosts.len(), 40);
        // Seed clique C(3,2) = 3 edges, then 2 per grown node.
        assert_eq!(t.links.len(), 3 + 37 * 2);
        assert!(t.is_connected());
    }

    #[test]
    fn generation_is_a_pure_function_of_model_and_seed() {
        for model in [
            TopologyModel::FatTree { k: 4 },
            TopologyModel::AsGraph { nodes: 24, edges_per_node: 2 },
        ] {
            let a = model.generate(42);
            let b = model.generate(42);
            assert_eq!(a, b, "same (model, seed) must regenerate identically");
            let c = model.generate(43);
            assert_ne!(
                a.links, c.links,
                "a different seed must draw different per-link parameters"
            );
        }
    }

    #[test]
    fn shortest_path_routes_are_loop_free() {
        for model in [
            TopologyModel::FatTree { k: 4 },
            TopologyModel::AsGraph { nodes: 24, edges_per_node: 2 },
        ] {
            let t = model.generate(5);
            let routing = Routing::shortest_path(&t.routing_graph());
            for &src in &t.hosts {
                for &dst in &t.hosts {
                    if src == dst {
                        continue;
                    }
                    let hops = t.walk_route(&routing, src, dst);
                    assert!(
                        hops.is_some_and(|h| h <= t.node_count),
                        "{model:?}: route {src}->{dst} loops or dead-ends"
                    );
                }
            }
        }
    }

    #[test]
    fn fat_tree_cross_pod_routes_climb_the_tree() {
        let t = TopologyModel::FatTree { k: 4 }.generate(3);
        let routing = Routing::shortest_path(&t.routing_graph());
        // Same-edge hosts: 2 hops (up, down). Cross-pod: 6 hops through core.
        assert_eq!(t.walk_route(&routing, t.hosts[0], t.hosts[1]), Some(2));
        assert_eq!(t.walk_route(&routing, t.hosts[0], t.hosts[15]), Some(6));
    }

    #[test]
    fn materialize_builds_a_runnable_sim() {
        let t = TopologyModel::FatTree { k: 2 }.generate(1);
        let mut b = SimBuilder::new(1);
        let m = t.materialize(&mut b);
        assert_eq!(m.nodes.len(), t.node_count);
        assert_eq!(m.links.len(), t.links.len());
        let mut sim = b.build();
        sim.run_until(netsim::time::SimTime::from_secs_f64(0.01));
        assert_eq!(sim.node_count(), t.node_count);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_fat_tree_arity_is_rejected() {
        TopologyModel::FatTree { k: 3 }.generate(0);
    }
}
