//! Heavy-tailed flow-size distributions.
//!
//! Internet flow sizes are famously heavy-tailed ("mice and elephants");
//! the churn engine draws sizes from a bounded Pareto (power-law body,
//! hard upper cutoff so a single draw cannot exceed the simulation
//! horizon) or a log-normal. Both sample by inverse-transform /
//! Box–Muller over the seeded uniform stream, so draws are deterministic.

use rand::rngs::SmallRng;
use rand::Rng;

/// A flow-size distribution over positive packet counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDist {
    /// Bounded Pareto on `[min, max]` with tail exponent `alpha`.
    BoundedPareto {
        /// Tail exponent (> 0; 1 < α < 2 gives the classic heavy tail).
        alpha: f64,
        /// Smallest size, inclusive (≥ 1).
        min: u64,
        /// Largest size, inclusive.
        max: u64,
    },
    /// Log-normal with location `mu` and scale `sigma` (of the underlying
    /// normal), truncated to `[1, max]`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal (> 0).
        sigma: f64,
        /// Largest size, inclusive.
        max: u64,
    },
}

impl SizeDist {
    /// Draws one size.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match *self {
            SizeDist::BoundedPareto { alpha, min, max } => {
                debug_assert!(alpha > 0.0 && min >= 1 && max >= min);
                let (l, h) = (min as f64, max as f64);
                let u: f64 = rng.gen_range(0.0..1.0);
                // Inverse CDF of the bounded Pareto on [l, h].
                let ratio = (l / h).powf(alpha);
                let x = l / (1.0 - u * (1.0 - ratio)).powf(1.0 / alpha);
                (x as u64).clamp(min, max)
            }
            SizeDist::LogNormal { mu, sigma, max } => {
                debug_assert!(sigma > 0.0 && max >= 1);
                // Box–Muller; u1 is kept away from 0 so ln is finite.
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let x = (mu + sigma * z).exp();
                (x as u64).clamp(1, max)
            }
        }
    }

    /// Mean size (closed form for the bounded Pareto, truncation ignored
    /// for the log-normal) — used to size arrival rates against service
    /// capacity.
    pub fn mean(&self) -> f64 {
        match *self {
            SizeDist::BoundedPareto { alpha, min, max } => {
                let (l, h) = (min as f64, max as f64);
                if (alpha - 1.0).abs() < 1e-9 {
                    (l * h / (h - l)) * (h / l).ln()
                } else {
                    (l.powf(alpha) / (1.0 - (l / h).powf(alpha)))
                        * (alpha / (alpha - 1.0))
                        * (1.0 / l.powf(alpha - 1.0) - 1.0 / h.powf(alpha - 1.0))
                }
            }
            SizeDist::LogNormal { mu, sigma, .. } => (mu + sigma * sigma / 2.0).exp(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn bounded_pareto_respects_bounds_and_skew() {
        let d = SizeDist::BoundedPareto { alpha: 1.3, min: 2, max: 1000 };
        let mut rng = SmallRng::seed_from_u64(9);
        let draws: Vec<u64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        assert!(draws.iter().all(|&v| (2..=1000).contains(&v)));
        let small = draws.iter().filter(|&&v| v <= 10).count();
        let big = draws.iter().filter(|&&v| v >= 500).count();
        assert!(small > draws.len() / 2, "most flows are mice: {small}");
        assert!(big > 0, "but elephants exist: {big}");
        // Empirical mean tracks the closed form within sampling noise.
        let emp = draws.iter().sum::<u64>() as f64 / draws.len() as f64;
        let theory = d.mean();
        assert!((emp - theory).abs() / theory < 0.15, "mean {emp} vs theory {theory}");
    }

    #[test]
    fn log_normal_respects_bounds() {
        let d = SizeDist::LogNormal { mu: 2.0, sigma: 1.0, max: 500 };
        let mut rng = SmallRng::seed_from_u64(10);
        let draws: Vec<u64> = (0..10_000).map(|_| d.sample(&mut rng)).collect();
        assert!(draws.iter().all(|&v| (1..=500).contains(&v)));
        let emp = draws.iter().sum::<u64>() as f64 / draws.len() as f64;
        // exp(2 + 0.5) ≈ 12.2; truncation pulls it down a little.
        assert!((5.0..20.0).contains(&emp), "log-normal mean off: {emp}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = SizeDist::BoundedPareto { alpha: 1.1, min: 1, max: 100 };
        let a: Vec<u64> =
            (0..100).scan(SmallRng::seed_from_u64(4), |r, _| Some(d.sample(r))).collect();
        let b: Vec<u64> =
            (0..100).scan(SmallRng::seed_from_u64(4), |r, _| Some(d.sample(r))).collect();
        assert_eq!(a, b);
    }
}
