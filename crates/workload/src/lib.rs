//! # workload — seeded scenario-population generation
//!
//! The paper's evaluation (and every grid in `experiments`) runs a handful
//! of hand-wired senders over dumbbell/parking-lot/mesh topologies. This
//! crate generates *populations*: structured data-center and Internet-like
//! topologies, plus an open-loop flow churn process with heavy-tailed flow
//! sizes, scaled to 10k+ concurrent flows with flat per-flow memory.
//!
//! Three building blocks:
//!
//! - [`topo`] — k-ary fat-tree and preferential-attachment AS-like graph
//!   generators. Every per-link parameter (delay jitter, capacity draw) is
//!   keyed by [`netsim::derive_seed`] over the link's index, so generation
//!   is a pure function of `(model, seed)` — byte-identical at any worker
//!   count, which the sweep engine's content-hash cache requires.
//! - [`churn`] — a Poisson arrival/departure process multiplexing logical
//!   flows over one `netsim` agent pair per host pair (the timer-driven
//!   emission loop follows [`netsim::traffic::OnOffSource`]). Per-flow
//!   state is a fixed-size slab entry; completed-flow statistics fold into
//!   streaming accumulators, never per-flow `Vec`s.
//! - [`stats`] — the streaming accumulators: incremental Jain's fairness
//!   index and coefficient of variation from running (n, Σx, Σx²), and
//!   p99 flow-completion time from the exact integer
//!   [`obs::LogHistogram`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod churn;
pub mod dist;
pub mod stats;
pub mod topo;

pub use churn::{ChurnConfig, ChurnSink, ChurnSource, ChurnStats};
pub use dist::SizeDist;
pub use stats::Streaming;
pub use topo::{GenLink, GeneratedTopology, TopologyModel};
