//! TD-FR: time-delayed fast recovery (Paxson \[18\], analyzed by
//! Blanton–Allman \[3\]).
//!
//! A NewReno-style sender that does **not** fire fast retransmit on the
//! third duplicate ACK. Instead it starts a timer at the *first* duplicate
//! ACK and retransmits only if duplicate ACKs persist for
//! `max(RTT/2, DT)`, where `DT` is the spacing between the first and third
//! duplicate ACK. Mild reordering resolves within the wait; persistent
//! reordering with long RTTs still defeats it (the paper's Figure 6, right
//! panel).

use std::collections::HashSet;

use netsim::time::{SimDuration, SimTime};
use transport::rto::RtoEstimator;
use transport::sender::{AckEvent, SenderOutput, TcpSenderAlgo};

/// Configuration for [`TdFrSender`].
#[derive(Debug, Clone)]
pub struct TdFrConfig {
    /// Upper bound on the congestion window, in segments.
    pub max_cwnd: f64,
    /// Initial slow-start threshold, in segments.
    pub initial_ssthresh: f64,
    /// Retransmission-timeout estimator.
    pub rto: RtoEstimator,
    /// RFC 3042 limited transmit (the paper notes TD-FR relies on it to
    /// reduce burstiness).
    pub limited_transmit: bool,
    /// Fallback wait when no RTT sample exists yet.
    pub default_wait: SimDuration,
}

impl Default for TdFrConfig {
    fn default() -> Self {
        TdFrConfig {
            max_cwnd: 10_000.0,
            initial_ssthresh: 128.0,
            rto: RtoEstimator::rfc2988(),
            limited_transmit: true,
            default_wait: SimDuration::from_millis(500),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Open,
    Recovery { recover: u64 },
}

/// Pending duplicate-ACK episode.
#[derive(Debug, Clone, Copy)]
struct DupEpisode {
    first_at: SimTime,
    deadline: SimTime,
    count: u32,
}

/// Event counters for [`TdFrSender`].
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct TdFrStats {
    /// Delayed fast retransmits that actually fired.
    pub delayed_fast_retransmits: u64,
    /// Duplicate-ACK episodes cancelled by a cumulative advance (reordering
    /// absorbed without a retransmission).
    pub cancelled_episodes: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// Segments acknowledged.
    pub acked_segments: u64,
}

/// The TD-FR sender.
///
/// # Examples
///
/// ```
/// use baselines::tdfr::{TdFrConfig, TdFrSender};
/// use transport::sender::{SenderOutput, TcpSenderAlgo};
/// use netsim::time::SimTime;
///
/// let mut s = TdFrSender::new(TdFrConfig::default());
/// let mut out = SenderOutput::new();
/// s.on_start(SimTime::ZERO, &mut out);
/// assert_eq!(s.cwnd(), 1.0);
/// ```
#[derive(Debug)]
pub struct TdFrSender {
    cfg: TdFrConfig,
    cwnd: f64,
    ssthresh: f64,
    snd_una: u64,
    snd_nxt: u64,
    state: State,
    rto: RtoEstimator,
    rto_deadline: Option<SimTime>,
    episode: Option<DupEpisode>,
    limited_transmit_credit: u64,
    retransmitted: HashSet<u64>,
    fr_allowed_from: u64,
    highest_sent: u64,
    stats: TdFrStats,
}

impl TdFrSender {
    /// Creates a sender in slow start with `cwnd = 1`.
    pub fn new(cfg: TdFrConfig) -> Self {
        let rto = cfg.rto.clone();
        let ssthresh = cfg.initial_ssthresh;
        TdFrSender {
            cfg,
            cwnd: 1.0,
            ssthresh,
            snd_una: 0,
            snd_nxt: 0,
            state: State::Open,
            rto,
            rto_deadline: None,
            episode: None,
            limited_transmit_credit: 0,
            retransmitted: HashSet::new(),
            fr_allowed_from: 0,
            highest_sent: 0,
            stats: TdFrStats::default(),
        }
    }

    /// Event counters.
    pub fn stats(&self) -> TdFrStats {
        self.stats
    }

    /// Smoothed RTT estimate, if sampled.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.rto.srtt()
    }

    /// Current retransmission timeout (including backoff).
    pub fn current_rto(&self) -> SimDuration {
        self.rto.rto()
    }

    /// The wait threshold `max(RTT/2, DT)` for the current episode.
    fn wait_threshold(&self, dt: Option<SimDuration>) -> SimDuration {
        let half_rtt = self.rto.srtt().map(|s| s / 2).unwrap_or(self.cfg.default_wait);
        match dt {
            Some(d) => half_rtt.max(d),
            None => half_rtt,
        }
    }

    fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn send_new_data(&mut self, out: &mut SenderOutput) {
        let window = self.cwnd.min(self.cfg.max_cwnd);
        while (self.flight() as f64) < window + self.limited_transmit_credit as f64 {
            // Go-back-N refill after a timeout: below highest_sent means
            // retransmission.
            let is_rtx = self.snd_nxt < self.highest_sent;
            if is_rtx {
                self.retransmitted.insert(self.snd_nxt);
            }
            out.transmit(self.snd_nxt, is_rtx);
            self.snd_nxt += 1;
            self.highest_sent = self.highest_sent.max(self.snd_nxt);
        }
    }

    fn arm_timer(&mut self, now: SimTime, out: &mut SenderOutput) {
        self.rto_deadline = if self.flight() > 0 { Some(now + self.rto.rto()) } else { None };
        self.rearm(out);
    }

    /// Programs the host's single timer to the earliest pending deadline.
    fn rearm(&self, out: &mut SenderOutput) {
        let fr = self.episode.map(|e| e.deadline);
        let deadline = match (self.rto_deadline, fr) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        match deadline {
            Some(d) => out.set_timer(d),
            None => out.cancel_timer(),
        }
    }

    fn grow(&mut self, newly_acked: u64) {
        for _ in 0..newly_acked {
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0;
            } else {
                self.cwnd += 1.0 / self.cwnd;
            }
        }
        self.cwnd = self.cwnd.min(self.cfg.max_cwnd);
    }

    fn fire_delayed_fast_retransmit(&mut self, now: SimTime, out: &mut SenderOutput) {
        self.stats.delayed_fast_retransmits += 1;
        self.ssthresh = (self.flight() as f64 / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
        self.state = State::Recovery { recover: self.snd_nxt };
        self.limited_transmit_credit = 0;
        out.transmit(self.snd_una, true);
        self.retransmitted.insert(self.snd_una);
        self.episode = None;
        self.arm_timer(now, out);
    }
}

impl transport::telemetry::SenderTelemetry for TdFrSender {
    fn common_stats(&self) -> transport::telemetry::CommonStats {
        transport::telemetry::CommonStats {
            algorithm: self.name().to_owned(),
            acked_segments: self.stats.acked_segments,
            // A delayed fast retransmit that fires is TD-FR's fast
            // retransmit.
            fast_retransmits: self.stats.delayed_fast_retransmits,
            timeouts: self.stats.timeouts,
            cwnd: self.cwnd,
            ssthresh: self.ssthresh,
            srtt: self.srtt(),
            rto: Some(self.current_rto()),
            extra: vec![("cancelled_episodes".to_owned(), self.stats.cancelled_episodes)],
            ..Default::default()
        }
    }
}

impl TcpSenderAlgo for TdFrSender {
    fn on_start(&mut self, now: SimTime, out: &mut SenderOutput) {
        self.send_new_data(out);
        self.arm_timer(now, out);
    }

    fn on_ack(&mut self, ack: &AckEvent, now: SimTime, out: &mut SenderOutput) {
        if ack.cum_ack > self.snd_una {
            let newly = ack.cum_ack - self.snd_una;
            self.stats.acked_segments += newly;
            self.snd_una = ack.cum_ack;
            // A pre-timeout packet may be acknowledged after a go-back-N
            // rewind.
            self.snd_nxt = self.snd_nxt.max(ack.cum_ack);
            self.retransmitted.retain(|&s| s >= ack.cum_ack);
            self.limited_transmit_credit = 0;
            if self.episode.take().is_some() {
                self.stats.cancelled_episodes += 1;
            }
            if ack.echo_tx_count == 1 {
                self.rto.on_sample(now.saturating_since(ack.echo_timestamp));
            }
            match self.state {
                State::Recovery { recover } if ack.cum_ack >= recover => {
                    self.cwnd = self.ssthresh;
                    self.state = State::Open;
                }
                State::Recovery { .. } => {
                    // Partial ACK: NewReno-style next-hole retransmission.
                    out.transmit(self.snd_una, true);
                    self.retransmitted.insert(self.snd_una);
                    self.cwnd = (self.cwnd - newly as f64 + 1.0).max(1.0);
                }
                State::Open => self.grow(newly),
            }
            self.send_new_data(out);
            self.arm_timer(now, out);
        } else if ack.dup && self.flight() > 0 {
            match self.state {
                State::Open => {
                    if self.snd_una < self.fr_allowed_from {
                        return;
                    }
                    match self.episode {
                        None => {
                            let deadline = now + self.wait_threshold(None);
                            self.episode = Some(DupEpisode { first_at: now, deadline, count: 1 });
                        }
                        Some(ep) => {
                            let count = ep.count + 1;
                            let mut deadline = ep.deadline;
                            if count == 3 {
                                // DT known: re-derive the deadline.
                                let dt = now.saturating_since(ep.first_at);
                                deadline = ep.first_at + self.wait_threshold(Some(dt));
                            }
                            self.episode =
                                Some(DupEpisode { first_at: ep.first_at, deadline, count });
                            if count >= 3 && deadline <= now {
                                self.fire_delayed_fast_retransmit(now, out);
                                return;
                            }
                        }
                    }
                    if self.cfg.limited_transmit && self.episode.is_some_and(|e| e.count <= 2) {
                        self.limited_transmit_credit += 1;
                        self.send_new_data(out);
                    }
                    self.rearm(out);
                }
                State::Recovery { .. } => {
                    // Window inflation while recovering.
                    self.cwnd += 1.0;
                    self.send_new_data(out);
                }
            }
        }
    }

    fn on_timer(&mut self, now: SimTime, out: &mut SenderOutput) {
        if let Some(ep) = self.episode {
            if ep.deadline <= now {
                // Duplicate ACKs persisted past the threshold: retransmit.
                self.fire_delayed_fast_retransmit(now, out);
                return;
            }
        }
        if let Some(d) = self.rto_deadline {
            if d <= now && self.flight() > 0 {
                self.stats.timeouts += 1;
                self.ssthresh = (self.flight() as f64 / 2.0).max(2.0);
                self.cwnd = 1.0;
                self.state = State::Open;
                self.episode = None;
                self.fr_allowed_from = self.highest_sent;
                self.rto.backoff();
                // Go-back-N: refill sequentially from snd_una.
                self.snd_nxt = self.snd_una;
                self.limited_transmit_credit = 0;
                self.send_new_data(out);
                self.arm_timer(now, out);
                return;
            }
        }
        self.rearm(out);
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn name(&self) -> &'static str {
        "TD-FR"
    }

    fn in_flight(&self) -> usize {
        self.flight() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    fn ack(cum: u64, sent: SimTime) -> AckEvent {
        AckEvent {
            cum_ack: cum,
            sack: Vec::new(),
            dsack: None,
            echo_timestamp: sent,
            echo_tx_count: 1,
            dup: false,
        }
    }

    fn dupack(cum: u64) -> AckEvent {
        AckEvent { dup: true, ..ack(cum, SimTime::ZERO) }
    }

    /// Grow with 100 ms RTT so srtt ≈ 100 ms.
    fn grow(s: &mut TdFrSender, rounds: u64) -> SimTime {
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        let mut now = SimTime::ZERO;
        for _ in 0..rounds {
            now += ms(100);
            let cum = s.snd_una + 1;
            out.clear();
            s.on_ack(&ack(cum, now - ms(100)), now, &mut out);
        }
        now
    }

    #[test]
    fn three_dupacks_do_not_fire_immediately() {
        let mut s = TdFrSender::new(TdFrConfig::default());
        let now = grow(&mut s, 8);
        let una = s.snd_una;
        let mut out = SenderOutput::new();
        // Three rapid dupacks (1 ms apart): DT = 2 ms < RTT/2 = 50 ms.
        for i in 0..3 {
            out.clear();
            s.on_ack(&dupack(una), now + ms(1 + i), &mut out);
        }
        assert_eq!(s.stats().delayed_fast_retransmits, 0, "must wait RTT/2");
        assert!(!out.transmissions().iter().any(|t| t.is_retransmit));
    }

    #[test]
    fn persistent_dupacks_fire_after_wait() {
        let mut s = TdFrSender::new(TdFrConfig::default());
        let now = grow(&mut s, 8);
        let una = s.snd_una;
        let mut out = SenderOutput::new();
        for i in 0..3 {
            out.clear();
            s.on_ack(&dupack(una), now + ms(1 + i), &mut out);
        }
        out.clear();
        // Timer fires past first_at + RTT/2 (≈ now + 1 + 50 ms).
        s.on_timer(now + ms(60), &mut out);
        assert_eq!(s.stats().delayed_fast_retransmits, 1);
        assert!(out.transmissions().iter().any(|t| t.is_retransmit && t.seq == una));
    }

    #[test]
    fn cum_advance_cancels_episode() {
        let mut s = TdFrSender::new(TdFrConfig::default());
        let now = grow(&mut s, 8);
        let una = s.snd_una;
        let mut out = SenderOutput::new();
        for i in 0..3 {
            out.clear();
            s.on_ack(&dupack(una), now + ms(1 + i), &mut out);
        }
        out.clear();
        // Reordered segment lands: cumulative ACK advances before deadline.
        s.on_ack(&ack(una + 4, now), now + ms(10), &mut out);
        assert_eq!(s.stats().cancelled_episodes, 1);
        out.clear();
        // A later timer fire must not retransmit.
        s.on_timer(now + ms(60), &mut out);
        assert_eq!(s.stats().delayed_fast_retransmits, 0);
    }

    #[test]
    fn slow_dupacks_stretch_the_wait() {
        let mut s = TdFrSender::new(TdFrConfig::default());
        let now = grow(&mut s, 8);
        let una = s.snd_una;
        let mut out = SenderOutput::new();
        // First and third dupack 200 ms apart: DT = 200 ms > RTT/2.
        s.on_ack(&dupack(una), now + ms(1), &mut out);
        s.on_ack(&dupack(una), now + ms(100), &mut out);
        out.clear();
        s.on_ack(&dupack(una), now + ms(201), &mut out);
        // Deadline = first_at + 200 ms = now + 201: already reached → fires.
        assert_eq!(s.stats().delayed_fast_retransmits, 1);
    }

    #[test]
    fn rto_still_works() {
        let mut s = TdFrSender::new(TdFrConfig::default());
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        out.clear();
        s.on_timer(SimTime::ZERO + SimDuration::from_secs(3), &mut out);
        assert_eq!(s.stats().timeouts, 1);
        assert_eq!(s.cwnd(), 1.0);
    }

    #[test]
    fn limited_transmit_releases_segments() {
        let mut s = TdFrSender::new(TdFrConfig::default());
        let now = grow(&mut s, 4);
        let una = s.snd_una;
        let mut out = SenderOutput::new();
        s.on_ack(&dupack(una), now + ms(1), &mut out);
        assert_eq!(out.transmissions().len(), 1);
        assert!(!out.transmissions()[0].is_retransmit);
    }
}
