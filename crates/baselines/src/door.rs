//! TCP-DOOR (Wang & Zhang \[20\]): detection of out-of-order delivery and
//! response, targeted at mobile ad-hoc networks.
//!
//! DOOR augments TCP with extra sequencing (a 2-byte per-transmission
//! ordinal on data and a 1-byte DUPACK ordinal) so both endpoints can
//! *detect* out-of-order delivery, and two sender responses:
//!
//! 1. **Temporarily disabling congestion control**: after an OOO event,
//!    congestion state (`cwnd`, RTO) is frozen — not reduced — for an
//!    interval `T1`.
//! 2. **Instant recovery during congestion avoidance**: if an OOO event is
//!    detected shortly after a congestion response, the response is rolled
//!    back (the reordering, not loss, explains the duplicate ACKs).
//!
//! Our model detects OOO **at the sender** from the ACK stream: an arriving
//! acknowledgment whose cumulative point is *behind* the furthest point
//! already seen, or whose timestamp echo is older than the newest echo
//! seen, must have been reordered in flight (the network delivered it after
//! a younger ACK). This is the same information DOOR's ordinals expose,
//! without header options — our substitution is documented in DESIGN.md.

use netsim::time::{SimDuration, SimTime};
use transport::sender::{AckEvent, SenderOutput, TcpSenderAlgo};
use transport::telemetry::SenderTelemetry;

use crate::reno::{RenoConfig, RenoSender, RenoStats};

/// Configuration for [`DoorSender`].
#[derive(Debug, Clone)]
pub struct DoorConfig {
    /// Base NewReno configuration.
    pub base: RenoConfig,
    /// How long congestion control stays disabled after an OOO detection
    /// (the paper's `T1`; it suggests on the order of an RTT).
    pub freeze_interval: SimDuration,
    /// Enable the instant-recovery response (roll back a recent congestion
    /// response when OOO is detected right after it).
    pub instant_recovery: bool,
    /// How far back a congestion response may be rolled back.
    pub rollback_window: SimDuration,
}

impl Default for DoorConfig {
    fn default() -> Self {
        DoorConfig {
            base: RenoConfig::default(),
            freeze_interval: SimDuration::from_millis(200),
            instant_recovery: true,
            rollback_window: SimDuration::from_millis(500),
        }
    }
}

/// Event counters for [`DoorSender`].
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct DoorStats {
    /// Out-of-order ACK arrivals detected.
    pub ooo_detected: u64,
    /// Congestion responses rolled back by instant recovery.
    pub instant_recoveries: u64,
    /// Duplicate ACKs suppressed while congestion control was frozen.
    pub suppressed_dupacks: u64,
}

/// A NewReno sender with TCP-DOOR's OOO detection and responses.
///
/// # Examples
///
/// ```
/// use baselines::door::{DoorConfig, DoorSender};
/// use transport::sender::TcpSenderAlgo;
///
/// let s = DoorSender::new(DoorConfig::default());
/// assert_eq!(s.name(), "TCP-DOOR");
/// ```
#[derive(Debug)]
pub struct DoorSender {
    inner: RenoSender,
    cfg: DoorConfig,
    /// Highest cumulative ACK observed (for stale-ACK detection).
    max_cum_seen: u64,
    /// Newest timestamp echo observed (for reordered-dupack detection).
    newest_echo: SimTime,
    /// Congestion control is disabled until this instant.
    frozen_until: Option<SimTime>,
    /// When the last congestion response happened (for rollback).
    last_response_at: Option<SimTime>,
    stats: DoorStats,
}

impl DoorSender {
    /// Creates a sender with the given configuration.
    pub fn new(cfg: DoorConfig) -> Self {
        DoorSender {
            inner: RenoSender::new(cfg.base.clone()),
            cfg,
            max_cum_seen: 0,
            newest_echo: SimTime::ZERO,
            frozen_until: None,
            last_response_at: None,
            stats: DoorStats::default(),
        }
    }

    /// Event counters.
    pub fn stats(&self) -> DoorStats {
        self.stats
    }

    /// Base NewReno counters.
    pub fn base_stats(&self) -> RenoStats {
        self.inner.stats()
    }

    /// True while congestion control is disabled.
    pub fn is_frozen(&self, now: SimTime) -> bool {
        self.frozen_until.is_some_and(|t| now < t)
    }

    fn detect_ooo(&mut self, ack: &AckEvent, now: SimTime) -> bool {
        let stale_cum = ack.cum_ack < self.max_cum_seen;
        let old_echo = ack.echo_timestamp < self.newest_echo;
        self.max_cum_seen = self.max_cum_seen.max(ack.cum_ack);
        self.newest_echo = self.newest_echo.max(ack.echo_timestamp);
        if stale_cum || old_echo {
            self.stats.ooo_detected += 1;
            self.frozen_until = Some(now + self.cfg.freeze_interval);
            // Instant recovery: a recent congestion response was likely
            // caused by this reordering — undo it.
            if self.cfg.instant_recovery {
                if let (Some(at), Some(record)) = (self.last_response_at, self.inner.last_reduction)
                {
                    if now.saturating_since(at) <= self.cfg.rollback_window {
                        self.stats.instant_recoveries += 1;
                        self.inner.restore_after_spurious(record, true);
                        self.inner.clear_reduction();
                        self.last_response_at = None;
                    }
                }
            }
            true
        } else {
            false
        }
    }
}

impl SenderTelemetry for DoorSender {
    fn common_stats(&self) -> transport::telemetry::CommonStats {
        let mut s = self.inner.common_stats();
        s.algorithm = self.name().to_owned();
        // DOOR's OOO detections play the role other variants' spurious
        // detections do, and instant recoveries are its reversals.
        s.spurious_detections = self.stats.ooo_detected;
        s.spurious_reversals = self.stats.instant_recoveries;
        s.extra.push(("suppressed_dupacks".to_owned(), self.stats.suppressed_dupacks));
        s
    }
}

impl TcpSenderAlgo for DoorSender {
    fn on_start(&mut self, now: SimTime, out: &mut SenderOutput) {
        self.inner.on_start(now, out);
    }

    fn on_ack(&mut self, ack: &AckEvent, now: SimTime, out: &mut SenderOutput) {
        self.detect_ooo(ack, now);
        let before = self.inner.stats().fast_retransmits + self.inner.stats().timeouts;
        if ack.dup && self.is_frozen(now) {
            // Congestion control disabled: ignore the duplicate entirely
            // (no dupack counting, no window movement).
            self.stats.suppressed_dupacks += 1;
            return;
        }
        self.inner.on_ack(ack, now, out);
        let after = self.inner.stats().fast_retransmits + self.inner.stats().timeouts;
        if after > before {
            self.last_response_at = Some(now);
        }
    }

    fn on_timer(&mut self, now: SimTime, out: &mut SenderOutput) {
        let before = self.inner.stats().timeouts;
        self.inner.on_timer(now, out);
        if self.inner.stats().timeouts > before {
            self.last_response_at = Some(now);
        }
    }

    fn cwnd(&self) -> f64 {
        self.inner.cwnd()
    }

    fn ssthresh(&self) -> f64 {
        self.inner.ssthresh()
    }

    fn name(&self) -> &'static str {
        "TCP-DOOR"
    }

    fn in_flight(&self) -> usize {
        self.inner.in_flight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    fn ack_at(cum: u64, echo_ms: u64) -> AckEvent {
        AckEvent {
            cum_ack: cum,
            sack: Vec::new(),
            dsack: None,
            echo_timestamp: SimTime::ZERO + ms(echo_ms),
            echo_tx_count: 1,
            dup: false,
        }
    }

    fn dupack(cum: u64, echo_ms: u64) -> AckEvent {
        AckEvent { dup: true, ..ack_at(cum, echo_ms) }
    }

    fn grown(rounds: u64) -> (DoorSender, SimTime) {
        let mut s = DoorSender::new(DoorConfig::default());
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        let mut now = SimTime::ZERO;
        for i in 0..rounds {
            now += ms(10);
            out.clear();
            s.on_ack(&ack_at(i + 1, 10 * i), now, &mut out);
        }
        (s, now)
    }

    #[test]
    fn stale_cum_ack_detected_as_ooo() {
        let (mut s, now) = grown(8);
        let mut out = SenderOutput::new();
        // A reordered, stale ACK arrives (cum behind the max seen).
        s.on_ack(&ack_at(3, 30), now + ms(1), &mut out);
        assert_eq!(s.stats().ooo_detected, 1);
        assert!(s.is_frozen(now + ms(2)));
        assert!(!s.is_frozen(now + ms(1) + s.cfg.freeze_interval));
    }

    #[test]
    fn frozen_sender_ignores_dupacks() {
        let (mut s, now) = grown(8);
        let mut out = SenderOutput::new();
        s.on_ack(&ack_at(3, 30), now + ms(1), &mut out); // freeze
        let cwnd = s.cwnd();
        for i in 0..5 {
            out.clear();
            s.on_ack(&dupack(8, 80), now + ms(2 + i), &mut out);
        }
        assert_eq!(s.base_stats().fast_retransmits, 0, "no FR while frozen");
        assert_eq!(s.cwnd(), cwnd);
        assert_eq!(s.stats().suppressed_dupacks, 5);
    }

    #[test]
    fn instant_recovery_rolls_back_recent_response() {
        let (mut s, now) = grown(8);
        let mut out = SenderOutput::new();
        let cwnd_before = s.cwnd();
        // Three dupacks: fast retransmit fires (window halves).
        for i in 0..3 {
            out.clear();
            s.on_ack(&dupack(8, 70), now + ms(1 + i), &mut out);
        }
        assert_eq!(s.base_stats().fast_retransmits, 1);
        assert!(s.cwnd() < cwnd_before);
        // An OOO ACK arrives shortly after: the response is rolled back.
        out.clear();
        s.on_ack(&ack_at(5, 40), now + ms(10), &mut out);
        assert_eq!(s.stats().instant_recoveries, 1);
        assert!(s.cwnd() >= cwnd_before, "window restored, got {}", s.cwnd());
    }

    #[test]
    fn in_order_traffic_never_triggers_door() {
        let (s, _) = grown(20);
        assert_eq!(s.stats().ooo_detected, 0);
        assert_eq!(s.stats().instant_recoveries, 0);
    }
}
