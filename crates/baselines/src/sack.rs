//! TCP SACK sender (RFC 2018 option, RFC 3517-style recovery), the paper's
//! fairness comparator in Section 4.
//!
//! Keeps a scoreboard of selectively-acknowledged segments; a segment is
//! deemed lost once `dupthresh` SACKed segments lie above it. During
//! recovery, transmission is limited by the *pipe* estimate rather than
//! window inflation. Like all DUPACK-driven variants, it misinterprets
//! persistent reordering as loss.

use std::collections::BTreeSet;

use netsim::time::{SimDuration, SimTime};
use transport::rto::RtoEstimator;
use transport::sender::{AckEvent, SenderOutput, TcpSenderAlgo};

/// Configuration for [`SackSender`].
#[derive(Debug, Clone)]
pub struct SackConfig {
    /// SACKed-segments-above threshold for declaring a segment lost.
    pub dupthresh: u32,
    /// Upper bound on the congestion window, in segments.
    pub max_cwnd: f64,
    /// Initial slow-start threshold, in segments.
    pub initial_ssthresh: f64,
    /// Retransmission-timeout estimator.
    pub rto: RtoEstimator,
}

impl Default for SackConfig {
    fn default() -> Self {
        SackConfig {
            dupthresh: 3,
            max_cwnd: 10_000.0,
            initial_ssthresh: 128.0,
            rto: RtoEstimator::rfc2988(),
        }
    }
}

/// Recovery state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Open,
    Recovery { recover: u64 },
}

/// Event counters for [`SackSender`].
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct SackStats {
    /// Recovery episodes entered.
    pub recoveries: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// Segments retransmitted from the scoreboard.
    pub scoreboard_retransmits: u64,
    /// Segments acknowledged cumulatively.
    pub acked_segments: u64,
}

/// A TCP SACK sender.
///
/// # Examples
///
/// ```
/// use baselines::sack::{SackConfig, SackSender};
/// use transport::sender::{SenderOutput, TcpSenderAlgo};
/// use netsim::time::SimTime;
///
/// let mut s = SackSender::new(SackConfig::default());
/// let mut out = SenderOutput::new();
/// s.on_start(SimTime::ZERO, &mut out);
/// assert_eq!(s.cwnd(), 1.0);
/// ```
#[derive(Debug)]
pub struct SackSender {
    cfg: SackConfig,
    cwnd: f64,
    ssthresh: f64,
    snd_una: u64,
    snd_nxt: u64,
    /// Segments above `snd_una` reported received.
    sacked: BTreeSet<u64>,
    /// Segments declared lost (unsacked with `dupthresh` SACKs above).
    lost: BTreeSet<u64>,
    /// Lost segments already retransmitted this episode.
    retxed: BTreeSet<u64>,
    state: State,
    rto: RtoEstimator,
    stats: SackStats,
}

impl SackSender {
    /// Creates a sender in slow start with `cwnd = 1`.
    pub fn new(cfg: SackConfig) -> Self {
        let rto = cfg.rto.clone();
        let ssthresh = cfg.initial_ssthresh;
        SackSender {
            cfg,
            cwnd: 1.0,
            ssthresh,
            snd_una: 0,
            snd_nxt: 0,
            sacked: BTreeSet::new(),
            lost: BTreeSet::new(),
            retxed: BTreeSet::new(),
            state: State::Open,
            rto,
            stats: SackStats::default(),
        }
    }

    /// Event counters.
    pub fn stats(&self) -> SackStats {
        self.stats
    }

    /// True while in SACK-based loss recovery.
    pub fn in_recovery(&self) -> bool {
        matches!(self.state, State::Recovery { .. })
    }

    /// Smoothed RTT estimate, if sampled.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.rto.srtt()
    }

    /// Current retransmission timeout (including backoff).
    pub fn current_rto(&self) -> SimDuration {
        self.rto.rto()
    }

    /// The pipe estimate: segments believed in flight.
    pub fn pipe(&self) -> u64 {
        let outstanding = self.snd_nxt - self.snd_una;
        // Unsacked & unlost are in flight; retransmitted lost ones are too.
        outstanding - self.sacked.len() as u64 - self.lost.len() as u64 + self.retxed.len() as u64
    }

    fn update_scoreboard(&mut self, ack: &AckEvent) {
        for &(start, end) in &ack.sack {
            for seq in start.max(self.snd_una)..end.min(self.snd_nxt) {
                if !self.lost.contains(&seq) {
                    self.sacked.insert(seq);
                } else {
                    // A lost-then-retransmitted segment got through.
                    self.sacked.insert(seq);
                }
            }
        }
        // Segments sacked are no longer lost.
        for seq in &self.sacked {
            self.lost.remove(seq);
            self.retxed.remove(seq);
        }
        self.mark_losses();
    }

    /// Declares lost every unsacked segment with at least `dupthresh`
    /// SACKed segments above it.
    fn mark_losses(&mut self) {
        let k = self.cfg.dupthresh as usize;
        if self.sacked.len() < k {
            return;
        }
        // The k-th largest SACKed segment: anything unsacked below it has
        // >= k SACKed segments above.
        let threshold = *self.sacked.iter().rev().nth(k - 1).expect("len checked");
        for seq in self.snd_una..threshold {
            if !self.sacked.contains(&seq) {
                self.lost.insert(seq);
            }
        }
    }

    fn send_allowed(&mut self, now: SimTime, out: &mut SenderOutput) {
        let _ = now;
        while (self.pipe() as f64) < self.cwnd.min(self.cfg.max_cwnd) {
            // NextSeg: first lost, un-retransmitted segment; else new data.
            let next_rtx = self.lost.iter().copied().find(|seq| !self.retxed.contains(seq));
            match next_rtx {
                Some(seq) => {
                    out.transmit(seq, true);
                    self.retxed.insert(seq);
                    self.stats.scoreboard_retransmits += 1;
                }
                None => {
                    out.transmit(self.snd_nxt, false);
                    self.snd_nxt += 1;
                }
            }
        }
    }

    fn arm_rto(&mut self, now: SimTime, out: &mut SenderOutput) {
        if self.snd_nxt > self.snd_una {
            out.set_timer(now + self.rto.rto());
        } else {
            out.cancel_timer();
        }
    }

    fn grow(&mut self, newly_acked: u64) {
        for _ in 0..newly_acked {
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0;
            } else {
                self.cwnd += 1.0 / self.cwnd;
            }
        }
        self.cwnd = self.cwnd.min(self.cfg.max_cwnd);
    }

    fn maybe_enter_recovery(&mut self, now: SimTime, out: &mut SenderOutput) {
        if self.state == State::Open && self.lost.contains(&self.snd_una) {
            self.stats.recoveries += 1;
            obs::span(now.as_nanos(), "cc.fast_rtx", || {
                format!("algo=sack seq={} cwnd={:.2}", self.snd_una, self.cwnd)
            });
            self.ssthresh = (self.cwnd / 2.0).max(2.0);
            self.cwnd = self.ssthresh;
            self.state = State::Recovery { recover: self.snd_nxt };
            // Fast retransmit of the detected hole goes out immediately
            // (ns-2 `sack1` behaviour); subsequent retransmissions are
            // pipe-limited.
            let una = self.snd_una;
            if !self.retxed.contains(&una) {
                out.transmit(una, true);
                self.retxed.insert(una);
                self.stats.scoreboard_retransmits += 1;
            }
        }
    }
}

impl transport::telemetry::SenderTelemetry for SackSender {
    fn common_stats(&self) -> transport::telemetry::CommonStats {
        transport::telemetry::CommonStats {
            algorithm: self.name().to_owned(),
            acked_segments: self.stats.acked_segments,
            // SACK's dupack-counted recovery entries are its fast
            // retransmits.
            fast_retransmits: self.stats.recoveries,
            timeouts: self.stats.timeouts,
            cwnd: self.cwnd,
            ssthresh: self.ssthresh,
            srtt: self.srtt(),
            rto: Some(self.current_rto()),
            extra: vec![("scoreboard_retransmits".to_owned(), self.stats.scoreboard_retransmits)],
            ..Default::default()
        }
    }
}

impl TcpSenderAlgo for SackSender {
    fn on_start(&mut self, now: SimTime, out: &mut SenderOutput) {
        self.send_allowed(now, out);
        self.arm_rto(now, out);
    }

    fn on_ack(&mut self, ack: &AckEvent, now: SimTime, out: &mut SenderOutput) {
        let advanced = ack.cum_ack > self.snd_una;
        if advanced {
            let newly = ack.cum_ack - self.snd_una;
            self.stats.acked_segments += newly;
            self.snd_una = ack.cum_ack;
            // Defensive: a malformed ACK beyond snd_nxt must not wrap the
            // flight arithmetic.
            self.snd_nxt = self.snd_nxt.max(ack.cum_ack);
            self.sacked.retain(|&s| s >= ack.cum_ack);
            self.lost.retain(|&s| s >= ack.cum_ack);
            self.retxed.retain(|&s| s >= ack.cum_ack);
            if ack.echo_tx_count == 1 {
                self.rto.on_sample(now.saturating_since(ack.echo_timestamp));
            }
            if let State::Recovery { recover } = self.state {
                if ack.cum_ack >= recover {
                    self.state = State::Open;
                }
            } else {
                self.grow(newly);
            }
        }
        self.update_scoreboard(ack);
        self.maybe_enter_recovery(now, out);
        self.send_allowed(now, out);
        if advanced {
            self.arm_rto(now, out);
        }
    }

    fn on_timer(&mut self, now: SimTime, out: &mut SenderOutput) {
        if self.snd_nxt == self.snd_una {
            return;
        }
        self.stats.timeouts += 1;
        obs::span(now.as_nanos(), "cc.rto_expiry", || {
            format!("algo=sack una={} flight={}", self.snd_una, self.snd_nxt - self.snd_una)
        });
        self.ssthresh = (((self.snd_nxt - self.snd_una) as f64) / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.state = State::Open;
        // Everything unsacked is presumed lost; retransmit in order as the
        // window re-opens.
        for seq in self.snd_una..self.snd_nxt {
            if !self.sacked.contains(&seq) {
                self.lost.insert(seq);
            }
        }
        self.retxed.clear();
        self.rto.backoff();
        self.send_allowed(now, out);
        self.arm_rto(now, out);
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn name(&self) -> &'static str {
        "TCP-SACK"
    }

    fn in_flight(&self) -> usize {
        self.pipe() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimDuration;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    fn ack(cum: u64, sack: Vec<(u64, u64)>) -> AckEvent {
        AckEvent {
            cum_ack: cum,
            sack,
            dsack: None,
            echo_timestamp: SimTime::ZERO,
            echo_tx_count: 1,
            dup: false,
        }
    }

    fn dupack(cum: u64, sack: Vec<(u64, u64)>) -> AckEvent {
        AckEvent { dup: true, ..ack(cum, sack) }
    }

    /// Grows the window with clean ACKs until at least `n` segments are in
    /// flight, returning the clock.
    fn grow(s: &mut SackSender, n: usize) -> SimTime {
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        let mut now = SimTime::ZERO;
        while s.in_flight() < n {
            now += ms(10);
            let cum = s.snd_una + 1;
            out.clear();
            s.on_ack(&ack(cum, Vec::new()), now, &mut out);
        }
        now
    }

    #[test]
    fn clean_acks_grow_like_reno() {
        let mut s = SackSender::new(SackConfig::default());
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        out.clear();
        s.on_ack(&ack(1, Vec::new()), SimTime::ZERO + ms(10), &mut out);
        assert_eq!(s.cwnd(), 2.0);
        assert_eq!(out.transmissions().len(), 2);
    }

    #[test]
    fn loss_declared_after_dupthresh_sacks_above() {
        let mut s = SackSender::new(SackConfig::default());
        let now = grow(&mut s, 8);
        let una = s.snd_una;
        let mut out = SenderOutput::new();
        // SACK una+1, una+2: not yet lost.
        s.on_ack(&dupack(una, vec![(una + 1, una + 3)]), now + ms(1), &mut out);
        assert!(!s.in_recovery());
        out.clear();
        // Third SACKed segment above: una is lost, recovery entered,
        // una retransmitted.
        s.on_ack(&dupack(una, vec![(una + 3, una + 4)]), now + ms(2), &mut out);
        assert!(s.in_recovery());
        assert!(out.transmissions().iter().any(|t| t.is_retransmit && t.seq == una));
        assert_eq!(s.stats().recoveries, 1);
    }

    #[test]
    fn pipe_limits_transmission_in_recovery() {
        let mut s = SackSender::new(SackConfig::default());
        let now = grow(&mut s, 8);
        let una = s.snd_una;
        let flight_before = s.in_flight();
        let mut out = SenderOutput::new();
        s.on_ack(&dupack(una, vec![(una + 1, una + 4)]), now + ms(1), &mut out);
        assert!(s.in_recovery());
        // Pipe must have dropped (3 sacked + 1 lost) and stay below cwnd+1.
        assert!(s.pipe() < flight_before as u64);
        assert!((s.pipe() as f64) <= s.cwnd() + 1.0);
    }

    #[test]
    fn only_one_reduction_per_episode() {
        let mut s = SackSender::new(SackConfig::default());
        let now = grow(&mut s, 8);
        let una = s.snd_una;
        let mut out = SenderOutput::new();
        s.on_ack(&dupack(una, vec![(una + 1, una + 4)]), now + ms(1), &mut out);
        let ssthresh = s.ssthresh();
        out.clear();
        // More SACKs marking further losses must not reduce again.
        s.on_ack(&dupack(una, vec![(una + 5, una + 7)]), now + ms(2), &mut out);
        assert_eq!(s.ssthresh(), ssthresh);
        assert_eq!(s.stats().recoveries, 1);
    }

    #[test]
    fn recovery_exits_at_recover_point() {
        let mut s = SackSender::new(SackConfig::default());
        let now = grow(&mut s, 8);
        let una = s.snd_una;
        let nxt = s.snd_nxt;
        let mut out = SenderOutput::new();
        s.on_ack(&dupack(una, vec![(una + 1, una + 4)]), now + ms(1), &mut out);
        assert!(s.in_recovery());
        out.clear();
        s.on_ack(&ack(nxt, Vec::new()), now + ms(50), &mut out);
        assert!(!s.in_recovery());
    }

    #[test]
    fn timeout_marks_unsacked_lost_and_slow_starts() {
        let mut s = SackSender::new(SackConfig::default());
        let now = grow(&mut s, 8);
        let una = s.snd_una;
        let mut out = SenderOutput::new();
        // One sacked segment survives the timeout.
        s.on_ack(&dupack(una, vec![(una + 2, una + 3)]), now + ms(1), &mut out);
        out.clear();
        s.on_timer(now + SimDuration::from_secs(5), &mut out);
        assert_eq!(s.cwnd(), 1.0);
        assert_eq!(s.stats().timeouts, 1);
        // First retransmission is the oldest lost segment (snd_una).
        let first = out.transmissions().first().expect("retransmission");
        assert!(first.is_retransmit);
        assert_eq!(first.seq, una);
        // The sacked segment is not retransmitted.
        assert!(out.transmissions().iter().all(|t| t.seq != una + 2));
    }

    #[test]
    fn no_duplicate_retransmissions_of_same_hole() {
        let mut s = SackSender::new(SackConfig::default());
        let now = grow(&mut s, 8);
        let una = s.snd_una;
        let mut out = SenderOutput::new();
        s.on_ack(&dupack(una, vec![(una + 1, una + 4)]), now + ms(1), &mut out);
        out.clear();
        s.on_ack(&dupack(una, vec![(una + 1, una + 5)]), now + ms(2), &mut out);
        assert!(
            !out.transmissions().iter().any(|t| t.seq == una),
            "hole already retransmitted must not repeat"
        );
    }

    #[test]
    fn repeated_timeouts_back_off_exponentially() {
        let mut s = SackSender::new(SackConfig::default());
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        out.clear();
        let mut now = SimTime::ZERO + SimDuration::from_secs(3);
        s.on_timer(now, &mut out);
        let d1 = match out.timer() {
            transport::sender::TimerOp::Set(t) => t.saturating_since(now),
            other => panic!("expected timer, got {other:?}"),
        };
        out.clear();
        now += d1;
        s.on_timer(now, &mut out);
        let d2 = match out.timer() {
            transport::sender::TimerOp::Set(t) => t.saturating_since(now),
            other => panic!("expected timer, got {other:?}"),
        };
        assert_eq!(d2, d1.saturating_mul(2), "RTO doubles: {d1} then {d2}");
        assert_eq!(s.stats().timeouts, 2);
    }

    #[test]
    fn custom_dupthresh_is_respected() {
        let mut s = SackSender::new(SackConfig { dupthresh: 5, ..SackConfig::default() });
        let now = grow(&mut s, 10);
        let una = s.snd_una;
        let mut out = SenderOutput::new();
        // Four SACKed segments above una: below the threshold of 5.
        s.on_ack(&dupack(una, vec![(una + 1, una + 5)]), now + ms(1), &mut out);
        assert!(!s.in_recovery(), "dupthresh 5 not yet reached");
        out.clear();
        s.on_ack(&dupack(una, vec![(una + 5, una + 6)]), now + ms(2), &mut out);
        assert!(s.in_recovery(), "fifth SACKed segment trips it");
    }

    #[test]
    fn rtt_sample_only_from_originals() {
        let mut s = SackSender::new(SackConfig::default());
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        out.clear();
        let rto_before = s.rto.rto();
        // An ACK whose echo says "retransmission" must not feed the RTO.
        let mut a = ack(1, Vec::new());
        a.echo_tx_count = 2;
        s.on_ack(&a, SimTime::ZERO + ms(10), &mut out);
        assert_eq!(s.rto.rto(), rto_before);
    }
}
