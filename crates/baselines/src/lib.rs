//! # baselines — the TCP variants the paper compares TCP-PR against
//!
//! All senders implement [`transport::sender::TcpSenderAlgo`] and attach to
//! a simulation with [`transport::host::attach_flow`]:
//!
//! | Module | Variant | Role in the paper |
//! |---|---|---|
//! | [`reno`] | TCP Reno / NewReno | DUPACK-driven substrate (Sections 1–2) |
//! | [`sack`] | TCP SACK (RFC 3517-style) | fairness comparator (Section 4, Figures 2–4) |
//! | [`tdfr`] | Time-delayed fast recovery | reordering comparator (Figure 6) |
//! | [`dsack`] | DSACK-NM / Inc-by-1 / Inc-by-N / EWMA | Blanton–Allman dupthresh responses (Figure 6) |
//! | [`eifel`] | Eifel | related work (Section 2), extension |
//! | [`door`] | TCP-DOOR | related work (Section 2), extension |
//!
//! # Examples
//!
//! ```
//! use baselines::sack::{SackConfig, SackSender};
//! use netsim::{SimBuilder, LinkConfig, FlowId, SimTime};
//! use transport::host::{attach_flow, receiver_host, FlowOptions};
//!
//! let mut b = SimBuilder::new(3);
//! let src = b.add_node();
//! let dst = b.add_node();
//! b.add_duplex(src, dst, LinkConfig::mbps_ms(10.0, 10, 100));
//! let mut sim = b.build();
//! let h = attach_flow(
//!     &mut sim,
//!     FlowId::from_raw(0),
//!     src,
//!     dst,
//!     SackSender::new(SackConfig::default()),
//!     FlowOptions::default(),
//! );
//! sim.run_until(SimTime::from_secs_f64(5.0));
//! assert!(receiver_host(&sim, h.receiver).delivered_bytes() > 1_000_000);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod door;
pub mod dsack;
pub mod eifel;
pub mod reno;
pub mod sack;
pub mod tdfr;

pub use door::{DoorConfig, DoorSender, DoorStats};
pub use dsack::{DsackSender, DupthreshResponse};
pub use eifel::EifelSender;
pub use reno::{RenoConfig, RenoSender, RenoState, RenoStats};
pub use sack::{SackConfig, SackSender, SackStats};
pub use tdfr::{TdFrConfig, TdFrSender, TdFrStats};
