//! TCP Reno / NewReno senders (packet-granularity, ns-2 style).
//!
//! These are the DUPACK-driven baselines the paper contrasts with TCP-PR:
//! fast retransmit fires after `dupthresh` duplicate ACKs, which misfires
//! under persistent reordering. NewReno adds partial-ACK handling in fast
//! recovery (RFC 2582); Reno exits recovery on any new ACK.

use std::collections::HashSet;

use netsim::time::{SimDuration, SimTime};
use transport::rto::RtoEstimator;
use transport::sender::{AckEvent, SenderOutput, TcpSenderAlgo};

/// Configuration shared by the Reno family.
#[derive(Debug, Clone)]
pub struct RenoConfig {
    /// Partial-ACK handling in fast recovery (NewReno) vs. exit-on-new-ACK
    /// (plain Reno).
    pub newreno: bool,
    /// Duplicate-ACK threshold for fast retransmit (3 in standard TCP).
    pub dupthresh: u32,
    /// RFC 3042 limited transmit: send one new segment on each of the first
    /// two duplicate ACKs.
    pub limited_transmit: bool,
    /// Upper bound on the congestion window, in segments.
    pub max_cwnd: f64,
    /// Initial slow-start threshold, in segments. Bounds the initial
    /// exponential overshoot; NewReno's hole-per-RTT recovery cannot cope
    /// with a whole-window catastrophe on a fat pipe.
    pub initial_ssthresh: f64,
    /// Retransmission-timeout estimator.
    pub rto: RtoEstimator,
}

impl Default for RenoConfig {
    fn default() -> Self {
        RenoConfig {
            newreno: true,
            dupthresh: 3,
            limited_transmit: false,
            max_cwnd: 10_000.0,
            initial_ssthresh: 128.0,
            rto: RtoEstimator::rfc2988(),
        }
    }
}

/// Loss-recovery state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenoState {
    /// Normal operation.
    Open,
    /// Fast recovery; `recover` is `snd_nxt` at entry.
    Recovery {
        /// Sequence number that ends the recovery episode when cumulatively
        /// acknowledged.
        recover: u64,
    },
}

/// Event counters for the Reno family.
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct RenoStats {
    /// Fast-retransmit events.
    pub fast_retransmits: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// Duplicate ACKs observed.
    pub dupacks: u64,
    /// Partial ACKs handled inside fast recovery (NewReno only).
    pub partial_acks: u64,
    /// Segments acknowledged.
    pub acked_segments: u64,
}

/// A TCP Reno / NewReno sender.
///
/// # Examples
///
/// ```
/// use baselines::reno::{RenoConfig, RenoSender};
/// use transport::sender::{SenderOutput, TcpSenderAlgo};
/// use netsim::time::SimTime;
///
/// let mut s = RenoSender::new(RenoConfig::default());
/// let mut out = SenderOutput::new();
/// s.on_start(SimTime::ZERO, &mut out);
/// assert_eq!(out.transmissions().len(), 1);
/// ```
#[derive(Debug)]
pub struct RenoSender {
    cfg: RenoConfig,
    cwnd: f64,
    ssthresh: f64,
    snd_una: u64,
    snd_nxt: u64,
    dupacks: u32,
    state: RenoState,
    rto: RtoEstimator,
    /// Fast retransmit is suppressed below this point (post-timeout "bugfix"
    /// from RFC 2582).
    fr_allowed_from: u64,
    /// Highest sequence ever transmitted + 1 (go-back-N after a timeout
    /// rewinds `snd_nxt` below this).
    highest_sent: u64,
    /// Extra segments granted by limited transmit (outside cwnd).
    limited_transmit_credit: u64,
    retransmitted: HashSet<u64>,
    last_sent_at: Option<SimTime>,
    stats: RenoStats,
    /// `(cwnd, ssthresh)` saved at the most recent reduction, with the
    /// retransmitted sequence that caused it — used by DSACK/Eifel wrappers.
    pub(crate) last_reduction: Option<ReductionRecord>,
}

/// Snapshot of congestion state before a reduction (for spurious-retransmit
/// undo à la Eifel/DSACK).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReductionRecord {
    pub prior_cwnd: f64,
    pub prior_ssthresh: f64,
    /// First segment retransmitted by the reduction.
    pub seq: u64,
    /// Duplicate ACKs observed when the reduction fired.
    pub dupacks: u32,
    /// True if the reduction was a timeout (vs. fast retransmit).
    #[allow(dead_code)]
    pub was_timeout: bool,
}

impl RenoSender {
    /// Creates a sender in slow start with `cwnd = 1`.
    pub fn new(cfg: RenoConfig) -> Self {
        let rto = cfg.rto.clone();
        let ssthresh = cfg.initial_ssthresh;
        RenoSender {
            cfg,
            cwnd: 1.0,
            ssthresh,
            snd_una: 0,
            snd_nxt: 0,
            dupacks: 0,
            state: RenoState::Open,
            rto,
            fr_allowed_from: 0,
            highest_sent: 0,
            limited_transmit_credit: 0,
            retransmitted: HashSet::new(),
            last_sent_at: None,
            stats: RenoStats::default(),
            last_reduction: None,
        }
    }

    /// Event counters.
    pub fn stats(&self) -> RenoStats {
        self.stats
    }

    /// Current recovery state.
    pub fn state(&self) -> RenoState {
        self.state
    }

    /// Current duplicate-ACK threshold.
    pub fn dupthresh(&self) -> u32 {
        self.cfg.dupthresh
    }

    /// Adjusts the duplicate-ACK threshold (used by the DSACK responses).
    pub fn set_dupthresh(&mut self, dupthresh: u32) {
        self.cfg.dupthresh = dupthresh.max(1);
    }

    /// Smoothed RTT estimate, if sampled.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.rto.srtt()
    }

    /// Current retransmission timeout (including backoff).
    pub fn current_rto(&self) -> SimDuration {
        self.rto.rto()
    }

    /// Packets currently unacknowledged.
    fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// True if `seq` has an outstanding retransmission this episode.
    pub(crate) fn was_retransmitted(&self, seq: u64) -> bool {
        self.retransmitted.contains(&seq)
    }

    /// Clears the saved reduction record (after an undo has been applied).
    pub(crate) fn clear_reduction(&mut self) {
        self.last_reduction = None;
    }

    /// Undoes a spurious congestion response. `instant` restores both the
    /// window and threshold at once (Eifel); otherwise the sender slow-starts
    /// back up to the prior window (the Blanton–Allman response, footnote 3
    /// of the TCP-PR paper: avoids injecting a sudden burst).
    pub(crate) fn restore_after_spurious(&mut self, record: ReductionRecord, instant: bool) {
        if instant {
            self.cwnd = record.prior_cwnd.min(self.cfg.max_cwnd);
            self.ssthresh = record.prior_ssthresh;
        } else {
            // Shed any fast-recovery inflation, then slow-start from the
            // reduced window back up to the pre-reduction one.
            self.cwnd = self.cwnd.min(self.ssthresh).max(1.0);
            self.ssthresh = record.prior_cwnd.min(self.cfg.max_cwnd);
        }
        if let RenoState::Recovery { .. } = self.state {
            self.state = RenoState::Open;
        }
        self.dupacks = 0;
    }

    fn send_new_data(&mut self, now: SimTime, out: &mut SenderOutput) {
        let window = self.cwnd.min(self.cfg.max_cwnd);
        while (self.flight() as f64) < window + self.limited_transmit_credit as f64 {
            // After a timeout the window refills from snd_una (go-back-N):
            // anything below highest_sent is a retransmission.
            let is_rtx = self.snd_nxt < self.highest_sent;
            if is_rtx {
                self.retransmitted.insert(self.snd_nxt);
            }
            out.transmit(self.snd_nxt, is_rtx);
            self.snd_nxt += 1;
            self.highest_sent = self.highest_sent.max(self.snd_nxt);
            self.last_sent_at = Some(now);
        }
    }

    fn retransmit(&mut self, seq: u64, out: &mut SenderOutput) {
        out.transmit(seq, true);
        self.retransmitted.insert(seq);
    }

    fn arm_rto(&mut self, now: SimTime, out: &mut SenderOutput) {
        if self.flight() > 0 {
            out.set_timer(now + self.rto.rto());
        } else {
            out.cancel_timer();
        }
    }

    fn grow(&mut self, newly_acked: u64) {
        for _ in 0..newly_acked {
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0;
            } else {
                self.cwnd += 1.0 / self.cwnd;
            }
        }
        self.cwnd = self.cwnd.min(self.cfg.max_cwnd);
    }

    fn enter_fast_retransmit(&mut self, now: SimTime, out: &mut SenderOutput) {
        self.stats.fast_retransmits += 1;
        obs::span(now.as_nanos(), "cc.fast_rtx", || {
            format!("algo=reno seq={} dupacks={} cwnd={:.2}", self.snd_una, self.dupacks, self.cwnd)
        });
        self.last_reduction = Some(ReductionRecord {
            prior_cwnd: self.cwnd,
            prior_ssthresh: self.ssthresh,
            seq: self.snd_una,
            dupacks: self.dupacks,
            was_timeout: false,
        });
        self.ssthresh = (self.flight() as f64 / 2.0).max(2.0);
        self.cwnd = self.ssthresh + self.dupacks as f64;
        self.state = RenoState::Recovery { recover: self.snd_nxt };
        self.limited_transmit_credit = 0;
        // An adjusted dupthresh must stay reachable within the reduced
        // window (Blanton–Allman keep it below 90% of cwnd).
        let cap = (0.9 * self.ssthresh).max(3.0) as u32;
        self.cfg.dupthresh = self.cfg.dupthresh.min(cap).max(1);
        let una = self.snd_una;
        self.retransmit(una, out);
        self.arm_rto(now, out);
    }

    fn handle_new_ack(&mut self, ack: &AckEvent, now: SimTime, out: &mut SenderOutput) {
        let newly = ack.cum_ack - self.snd_una;
        self.stats.acked_segments += newly;
        self.snd_una = ack.cum_ack;
        // A pre-timeout packet may be acknowledged after a go-back-N rewind.
        self.snd_nxt = self.snd_nxt.max(ack.cum_ack);
        self.dupacks = 0;
        self.limited_transmit_credit = 0;
        self.retransmitted.retain(|&s| s >= ack.cum_ack);
        if ack.echo_tx_count == 1 {
            self.rto.on_sample(now.saturating_since(ack.echo_timestamp));
        }
        match self.state {
            RenoState::Recovery { recover } if ack.cum_ack >= recover => {
                // Full ACK: deflate and leave recovery.
                self.cwnd = self.ssthresh;
                self.state = RenoState::Open;
            }
            RenoState::Recovery { .. } => {
                if self.cfg.newreno {
                    // Partial ACK: retransmit the next hole, deflate by the
                    // amount acked, inflate by one (RFC 2582).
                    self.stats.partial_acks += 1;
                    let una = self.snd_una;
                    self.retransmit(una, out);
                    self.cwnd = (self.cwnd - newly as f64 + 1.0).max(1.0);
                } else {
                    // Plain Reno leaves recovery on any new ACK.
                    self.cwnd = self.ssthresh;
                    self.state = RenoState::Open;
                    self.grow(newly.saturating_sub(1));
                }
            }
            RenoState::Open => self.grow(newly),
        }
        self.send_new_data(now, out);
        self.arm_rto(now, out);
    }

    fn handle_dupack(&mut self, now: SimTime, out: &mut SenderOutput) {
        if self.flight() == 0 {
            return;
        }
        self.dupacks += 1;
        self.stats.dupacks += 1;
        match self.state {
            RenoState::Open => {
                if self.dupacks >= self.cfg.dupthresh && self.snd_una >= self.fr_allowed_from {
                    self.enter_fast_retransmit(now, out);
                } else if self.cfg.limited_transmit && self.dupacks <= 2 {
                    self.limited_transmit_credit += 1;
                    self.send_new_data(now, out);
                }
            }
            RenoState::Recovery { .. } => {
                // Window inflation: each dupack signals a departure.
                self.cwnd = (self.cwnd + 1.0).min(self.cfg.max_cwnd + self.cfg.dupthresh as f64);
                self.send_new_data(now, out);
            }
        }
    }
}

impl transport::telemetry::SenderTelemetry for RenoSender {
    fn common_stats(&self) -> transport::telemetry::CommonStats {
        transport::telemetry::CommonStats {
            algorithm: self.name().to_owned(),
            acked_segments: self.stats.acked_segments,
            fast_retransmits: self.stats.fast_retransmits,
            timeouts: self.stats.timeouts,
            dupacks: self.stats.dupacks,
            cwnd: self.cwnd,
            ssthresh: self.ssthresh,
            srtt: self.srtt(),
            rto: Some(self.current_rto()),
            extra: vec![("partial_acks".to_owned(), self.stats.partial_acks)],
            ..Default::default()
        }
    }
}

impl TcpSenderAlgo for RenoSender {
    fn on_start(&mut self, now: SimTime, out: &mut SenderOutput) {
        self.send_new_data(now, out);
        self.arm_rto(now, out);
    }

    fn on_ack(&mut self, ack: &AckEvent, now: SimTime, out: &mut SenderOutput) {
        if ack.cum_ack > self.snd_una {
            self.handle_new_ack(ack, now, out);
        } else if ack.dup {
            self.handle_dupack(now, out);
        }
    }

    fn on_timer(&mut self, now: SimTime, out: &mut SenderOutput) {
        if self.flight() == 0 {
            return;
        }
        self.stats.timeouts += 1;
        obs::span(now.as_nanos(), "cc.rto_expiry", || {
            format!("algo=reno una={} flight={}", self.snd_una, self.flight())
        });
        self.last_reduction = Some(ReductionRecord {
            prior_cwnd: self.cwnd,
            prior_ssthresh: self.ssthresh,
            seq: self.snd_una,
            dupacks: self.dupacks,
            was_timeout: true,
        });
        self.ssthresh = (self.flight() as f64 / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.dupacks = 0;
        self.state = RenoState::Open;
        self.fr_allowed_from = self.highest_sent;
        self.rto.backoff();
        // Go-back-N: everything in flight is presumed lost; the window
        // refills sequentially from snd_una (ns-2 `t_seqno_ = highest_ack_`).
        self.snd_nxt = self.snd_una;
        self.limited_transmit_credit = 0;
        self.send_new_data(now, out);
        self.arm_rto(now, out);
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn name(&self) -> &'static str {
        if self.cfg.newreno {
            "TCP-NewReno"
        } else {
            "TCP-Reno"
        }
    }

    fn in_flight(&self) -> usize {
        self.flight() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    fn at(ms_: u64) -> SimTime {
        SimTime::ZERO + ms(ms_)
    }

    fn ack_at(cum: u64, sent: SimTime) -> AckEvent {
        AckEvent {
            cum_ack: cum,
            sack: Vec::new(),
            dsack: None,
            echo_timestamp: sent,
            echo_tx_count: 1,
            dup: false,
        }
    }

    fn dupack(cum: u64) -> AckEvent {
        AckEvent { dup: true, ..ack_at(cum, SimTime::ZERO) }
    }

    #[test]
    fn slow_start_growth() {
        let mut s = RenoSender::new(RenoConfig::default());
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        assert_eq!(out.transmissions().len(), 1);
        out.clear();
        s.on_ack(&ack_at(1, SimTime::ZERO), at(100), &mut out);
        assert_eq!(s.cwnd(), 2.0);
        assert_eq!(out.transmissions().len(), 2);
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let mut s = RenoSender::new(RenoConfig::default());
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        out.clear();
        // Grow to a sizeable window.
        let mut now = SimTime::ZERO;
        for cum in 1..=8 {
            now += ms(10);
            s.on_ack(&ack_at(cum, now - ms(10)), now, &mut out);
            out.clear();
        }
        let flight = s.in_flight() as f64;
        assert!(flight >= 8.0);
        for _ in 0..2 {
            s.on_ack(&dupack(8), now + ms(1), &mut out);
            assert!(out.transmissions().is_empty());
        }
        s.on_ack(&dupack(8), now + ms(2), &mut out);
        assert_eq!(s.stats().fast_retransmits, 1);
        let rtx: Vec<_> = out.transmissions().iter().filter(|t| t.is_retransmit).collect();
        assert_eq!(rtx.len(), 1);
        assert_eq!(rtx[0].seq, 8);
        assert!((s.ssthresh() - flight / 2.0).abs() < 1e-9);
        assert!(matches!(s.state(), RenoState::Recovery { .. }));
    }

    #[test]
    fn recovery_inflation_sends_new_data() {
        let mut s = RenoSender::new(RenoConfig::default());
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        out.clear();
        let mut now = SimTime::ZERO;
        for cum in 1..=8 {
            now += ms(10);
            s.on_ack(&ack_at(cum, now - ms(10)), now, &mut out);
            out.clear();
        }
        for _ in 0..3 {
            s.on_ack(&dupack(8), now + ms(1), &mut out);
        }
        out.clear();
        // Enough extra dupacks inflate the window past flight: new data.
        let mut sent_new = false;
        for i in 0..10 {
            s.on_ack(&dupack(8), now + ms(2 + i), &mut out);
            if out.transmissions().iter().any(|t| !t.is_retransmit) {
                sent_new = true;
            }
            out.clear();
        }
        assert!(sent_new, "inflation must eventually release new segments");
    }

    #[test]
    fn newreno_partial_ack_retransmits_next_hole() {
        let mut s = RenoSender::new(RenoConfig::default());
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        out.clear();
        let mut now = SimTime::ZERO;
        for cum in 1..=8 {
            now += ms(10);
            s.on_ack(&ack_at(cum, now - ms(10)), now, &mut out);
            out.clear();
        }
        for _ in 0..3 {
            s.on_ack(&dupack(8), now + ms(1), &mut out);
        }
        out.clear();
        // Partial ACK: hole at 10 (recovery covers up to snd_nxt).
        s.on_ack(&ack_at(10, now), now + ms(5), &mut out);
        assert!(matches!(s.state(), RenoState::Recovery { .. }), "partial ACK stays in recovery");
        let rtx: Vec<_> = out.transmissions().iter().filter(|t| t.is_retransmit).collect();
        assert_eq!(rtx.len(), 1);
        assert_eq!(rtx[0].seq, 10);
        assert_eq!(s.stats().partial_acks, 1);
    }

    #[test]
    fn reno_exits_recovery_on_any_new_ack() {
        let cfg = RenoConfig { newreno: false, ..RenoConfig::default() };
        let mut s = RenoSender::new(cfg);
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        out.clear();
        let mut now = SimTime::ZERO;
        for cum in 1..=8 {
            now += ms(10);
            s.on_ack(&ack_at(cum, now - ms(10)), now, &mut out);
            out.clear();
        }
        for _ in 0..3 {
            s.on_ack(&dupack(8), now + ms(1), &mut out);
        }
        s.on_ack(&ack_at(10, now), now + ms(5), &mut out);
        assert_eq!(s.state(), RenoState::Open);
    }

    #[test]
    fn full_ack_deflates_to_ssthresh() {
        let mut s = RenoSender::new(RenoConfig::default());
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        out.clear();
        let mut now = SimTime::ZERO;
        for cum in 1..=8 {
            now += ms(10);
            s.on_ack(&ack_at(cum, now - ms(10)), now, &mut out);
            out.clear();
        }
        let snd_nxt_at_loss = 8 + s.in_flight() as u64;
        for _ in 0..3 {
            s.on_ack(&dupack(8), now + ms(1), &mut out);
        }
        let ssthresh = s.ssthresh();
        out.clear();
        s.on_ack(&ack_at(snd_nxt_at_loss, now), now + ms(50), &mut out);
        assert_eq!(s.state(), RenoState::Open);
        assert_eq!(s.cwnd(), ssthresh);
    }

    #[test]
    fn timeout_resets_to_one_and_backs_off() {
        let mut s = RenoSender::new(RenoConfig::default());
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        out.clear();
        s.on_timer(at(3000), &mut out);
        assert_eq!(s.cwnd(), 1.0);
        assert_eq!(s.stats().timeouts, 1);
        let rtx: Vec<_> = out.transmissions().iter().filter(|t| t.is_retransmit).collect();
        assert_eq!(rtx.len(), 1);
        assert_eq!(rtx[0].seq, 0);
        // Timer re-armed with backoff (6 s after a 3 s initial RTO).
        match out.timer() {
            transport::sender::TimerOp::Set(t) => {
                assert_eq!(t, at(3000) + SimDuration::from_secs(6));
            }
            other => panic!("expected re-armed timer, got {other:?}"),
        }
    }

    #[test]
    fn no_fast_retransmit_right_after_timeout() {
        let mut s = RenoSender::new(RenoConfig::default());
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        out.clear();
        let mut now = SimTime::ZERO;
        for cum in 1..=4 {
            now += ms(10);
            s.on_ack(&ack_at(cum, now - ms(10)), now, &mut out);
            out.clear();
        }
        s.on_timer(now + SimDuration::from_secs(5), &mut out);
        out.clear();
        // Dupacks for pre-timeout data must not re-enter fast retransmit.
        for i in 0..5 {
            s.on_ack(&dupack(4), now + SimDuration::from_secs(5) + ms(i), &mut out);
        }
        assert_eq!(s.stats().fast_retransmits, 0);
    }

    #[test]
    fn timeout_goes_back_n() {
        // Grow, then let everything time out: the refill must restart from
        // snd_una and mark the resent segments as retransmissions.
        let mut s = RenoSender::new(RenoConfig::default());
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        out.clear();
        let mut now = SimTime::ZERO;
        for cum in 1..=4 {
            now += ms(10);
            s.on_ack(&ack_at(cum, now - ms(10)), now, &mut out);
            out.clear();
        }
        s.on_timer(now + SimDuration::from_secs(5), &mut out);
        // cwnd = 1 → exactly one segment goes out: the oldest hole.
        assert_eq!(out.transmissions().len(), 1);
        assert_eq!(out.transmissions()[0].seq, 4);
        assert!(out.transmissions()[0].is_retransmit);
        out.clear();
        // The ACK for it releases the *next* previously-sent segments,
        // also flagged as retransmissions.
        s.on_ack(&ack_at(5, now), now + SimDuration::from_secs(6), &mut out);
        assert!(!out.transmissions().is_empty());
        assert!(
            out.transmissions().iter().all(|t| t.is_retransmit),
            "go-back-N refill resends old sequence numbers"
        );
    }

    #[test]
    fn post_timeout_ack_beyond_rewound_nxt_is_safe() {
        // A pre-timeout packet can be acknowledged after the rewind; the
        // sender must not underflow its flight accounting.
        let mut s = RenoSender::new(RenoConfig::default());
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        out.clear();
        let mut now = SimTime::ZERO;
        for cum in 1..=4 {
            now += ms(10);
            s.on_ack(&ack_at(cum, now - ms(10)), now, &mut out);
            out.clear();
        }
        let nxt_before = s.snd_nxt;
        s.on_timer(now + SimDuration::from_secs(5), &mut out);
        out.clear();
        // Everything that was in flight pre-timeout gets acked at once.
        s.on_ack(&ack_at(nxt_before, now), now + SimDuration::from_secs(5) + ms(1), &mut out);
        assert_eq!(s.in_flight(), out.transmissions().len());
        assert!(s.cwnd() >= 1.0);
    }

    #[test]
    fn limited_transmit_sends_on_first_two_dupacks() {
        let cfg = RenoConfig { limited_transmit: true, ..RenoConfig::default() };
        let mut s = RenoSender::new(cfg);
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        out.clear();
        let mut now = SimTime::ZERO;
        for cum in 1..=4 {
            now += ms(10);
            s.on_ack(&ack_at(cum, now - ms(10)), now, &mut out);
            out.clear();
        }
        s.on_ack(&dupack(4), now + ms(1), &mut out);
        assert_eq!(out.transmissions().len(), 1, "limited transmit releases one segment");
        assert!(!out.transmissions()[0].is_retransmit);
        out.clear();
        s.on_ack(&dupack(4), now + ms(2), &mut out);
        assert_eq!(out.transmissions().len(), 1);
    }

    #[test]
    fn dupacks_with_nothing_outstanding_ignored() {
        // Before anything is sent, stray dupacks must be ignored.
        let mut s = RenoSender::new(RenoConfig::default());
        let mut out = SenderOutput::new();
        for _ in 0..5 {
            s.on_ack(&dupack(0), at(30), &mut out);
        }
        assert_eq!(s.stats().fast_retransmits, 0);
        assert_eq!(s.stats().dupacks, 0);
        assert!(out.transmissions().is_empty());
    }
}
