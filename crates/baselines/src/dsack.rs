//! DSACK-based responses to spurious retransmissions (Blanton–Allman \[3\]).
//!
//! These wrap a NewReno sender. When the receiver's DSACK option reveals
//! that a retransmission was spurious (the original arrived too — just
//! late), the sender restores the congestion state it held before the bogus
//! reduction and, depending on the variant, adapts the duplicate-ACK
//! threshold:
//!
//! - **DSACK-NM** — restore only, no dupthresh movement;
//! - **Inc by 1** — `dupthresh += 1` per spurious event;
//! - **Inc by N** — `dupthresh := avg(dupthresh, N)` where `N` is the number
//!   of duplicate ACKs the reordering event generated;
//! - **EWMA** — `dupthresh := (1-g)·dupthresh + g·N`.
//!
//! The threshold is clamped to at least 3 (never more aggressive than
//! standard TCP) and at most 90 % of the window (so it stays reachable), as
//! in the original ns-2 patches. The restore is applied instantaneously;
//! the original proposal optionally slow-starts back, which only makes these
//! baselines slower to recover — the Figure 6 ordering is insensitive to it.

use netsim::time::SimTime;
use transport::sender::{AckEvent, SenderOutput, TcpSenderAlgo};
use transport::telemetry::SenderTelemetry;

use crate::reno::{RenoConfig, RenoSender, RenoStats};

/// How dupthresh reacts to a detected spurious retransmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DupthreshResponse {
    /// Restore congestion state only ("DSACK-NM").
    NoMovement,
    /// Increment by a constant ("Inc by 1" uses 1).
    IncrementBy(u32),
    /// Average with the episode's duplicate-ACK count ("Inc by N").
    AverageWithEpisode,
    /// Exponentially-weighted moving average of episode counts.
    Ewma {
        /// Weight of the newest episode count, in `(0, 1]`.
        gain: f64,
    },
}

impl DupthreshResponse {
    /// Display label matching the paper's Figure 6 legend.
    pub fn label(&self) -> &'static str {
        match self {
            DupthreshResponse::NoMovement => "DSACK-NM",
            DupthreshResponse::IncrementBy(_) => "Inc by 1",
            DupthreshResponse::AverageWithEpisode => "Inc by N",
            DupthreshResponse::Ewma { .. } => "EWMA",
        }
    }
}

/// Event counters for [`DsackSender`].
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct DsackStats {
    /// Spurious retransmissions detected via DSACK.
    pub spurious_detected: u64,
    /// Congestion-state restorations applied.
    pub restores: u64,
}

/// A NewReno sender extended with a DSACK spurious-retransmit response.
///
/// # Examples
///
/// ```
/// use baselines::dsack::{DsackSender, DupthreshResponse};
/// use baselines::reno::RenoConfig;
/// use transport::sender::TcpSenderAlgo;
///
/// let s = DsackSender::new(RenoConfig::default(), DupthreshResponse::IncrementBy(1));
/// assert_eq!(s.name(), "Inc by 1");
/// assert_eq!(s.dupthresh(), 3);
/// ```
#[derive(Debug)]
pub struct DsackSender {
    inner: RenoSender,
    response: DupthreshResponse,
    /// Fractional dupthresh state (EWMA needs sub-integer resolution).
    dupthresh_f: f64,
    /// Duplicate ACKs seen since the last cumulative advance.
    dupacks_in_episode: u64,
    /// Episode length snapshot taken when the cumulative point advanced
    /// (the DSACK that reveals spuriousness arrives *after* the advance).
    last_episode_dupacks: u64,
    stats: DsackStats,
}

impl DsackSender {
    /// Creates a sender with the given base configuration and response.
    pub fn new(base: RenoConfig, response: DupthreshResponse) -> Self {
        let dupthresh_f = base.dupthresh as f64;
        DsackSender {
            inner: RenoSender::new(base),
            response,
            dupthresh_f,
            dupacks_in_episode: 0,
            last_episode_dupacks: 0,
            stats: DsackStats::default(),
        }
    }

    /// Current duplicate-ACK threshold.
    pub fn dupthresh(&self) -> u32 {
        self.inner.dupthresh()
    }

    /// Event counters.
    pub fn stats(&self) -> DsackStats {
        self.stats
    }

    /// Base NewReno counters.
    pub fn base_stats(&self) -> RenoStats {
        self.inner.stats()
    }

    fn handle_dsack(&mut self, block: (u64, u64)) {
        let seq = block.0;
        // Spurious only if the duplicate is explained by our retransmission.
        let Some(record) = self.inner.last_reduction else { return };
        if record.seq != seq && !self.inner.was_retransmitted(seq) {
            return;
        }
        self.stats.spurious_detected += 1;
        self.stats.restores += 1;
        // Slow-start restore (avoids bursts), per Blanton–Allman.
        self.inner.restore_after_spurious(record, false);
        self.inner.clear_reduction();

        let episode_n = self.last_episode_dupacks.max(record.dupacks as u64) as f64;
        self.dupthresh_f = match self.response {
            DupthreshResponse::NoMovement => self.dupthresh_f,
            DupthreshResponse::IncrementBy(k) => self.dupthresh_f + k as f64,
            DupthreshResponse::AverageWithEpisode => (self.dupthresh_f + episode_n) / 2.0,
            DupthreshResponse::Ewma { gain } => (1.0 - gain) * self.dupthresh_f + gain * episode_n,
        };
        // Clamp: never below standard TCP's 3, never beyond 90% of cwnd
        // (it must stay reachable).
        let cap = (0.9 * self.inner.cwnd()).max(3.0);
        self.dupthresh_f = self.dupthresh_f.clamp(3.0, cap);
        self.inner.set_dupthresh(self.dupthresh_f.round() as u32);
    }
}

impl SenderTelemetry for DsackSender {
    fn common_stats(&self) -> transport::telemetry::CommonStats {
        let mut s = self.inner.common_stats();
        s.algorithm = self.name().to_owned();
        s.spurious_detections = self.stats.spurious_detected;
        s.spurious_reversals = self.stats.restores;
        s.extra.push(("dupthresh".to_owned(), self.dupthresh() as u64));
        s
    }
}

impl TcpSenderAlgo for DsackSender {
    fn on_start(&mut self, now: SimTime, out: &mut SenderOutput) {
        self.inner.on_start(now, out);
    }

    fn on_ack(&mut self, ack: &AckEvent, now: SimTime, out: &mut SenderOutput) {
        if ack.dup {
            self.dupacks_in_episode += 1;
        } else {
            if self.dupacks_in_episode > 0 {
                self.last_episode_dupacks = self.dupacks_in_episode;
            }
            self.dupacks_in_episode = 0;
        }
        if let Some(block) = ack.dsack {
            self.handle_dsack(block);
        }
        self.inner.on_ack(ack, now, out);
    }

    fn on_timer(&mut self, now: SimTime, out: &mut SenderOutput) {
        self.inner.on_timer(now, out);
    }

    fn cwnd(&self) -> f64 {
        self.inner.cwnd()
    }

    fn ssthresh(&self) -> f64 {
        self.inner.ssthresh()
    }

    fn name(&self) -> &'static str {
        self.response.label()
    }

    fn in_flight(&self) -> usize {
        self.inner.in_flight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimDuration;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    fn ack(cum: u64) -> AckEvent {
        AckEvent {
            cum_ack: cum,
            sack: Vec::new(),
            dsack: None,
            echo_timestamp: SimTime::ZERO,
            echo_tx_count: 1,
            dup: false,
        }
    }

    fn dupack(cum: u64) -> AckEvent {
        AckEvent { dup: true, ..ack(cum) }
    }

    /// Drives the sender into a spurious fast retransmit and delivers the
    /// revealing DSACK. Returns the sender.
    fn spurious_episode(response: DupthreshResponse, extra_dupacks: u64) -> DsackSender {
        let mut s = DsackSender::new(RenoConfig::default(), response);
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        let mut now = SimTime::ZERO;
        // Grow the window.
        for cum in 1..=8 {
            now += ms(10);
            out.clear();
            s.on_ack(&ack(cum), now, &mut out);
        }
        // Reordering event: dupacks (3 trigger FR + extras).
        for i in 0..(3 + extra_dupacks) {
            out.clear();
            s.on_ack(&dupack(8), now + ms(1 + i), &mut out);
        }
        assert_eq!(s.base_stats().fast_retransmits, 1);
        // The reordered original arrives: cumulative advance...
        out.clear();
        s.on_ack(&ack(9), now + ms(30), &mut out);
        // ...then the spurious retransmission arrives: DSACK for 8.
        let mut d = dupack(9);
        d.dsack = Some((8, 9));
        out.clear();
        s.on_ack(&d, now + ms(31), &mut out);
        s
    }

    #[test]
    fn nm_restores_but_keeps_dupthresh() {
        let s = spurious_episode(DupthreshResponse::NoMovement, 2);
        assert_eq!(s.stats().spurious_detected, 1);
        assert_eq!(s.dupthresh(), 3);
    }

    #[test]
    fn restore_recovers_window() {
        let s = spurious_episode(DupthreshResponse::NoMovement, 2);
        // Slow-start restore: ssthresh is set to the pre-reduction window
        // (9.0 after 8 acked in slow start) so the sender climbs back to it
        // exponentially instead of jumping (no sudden burst).
        assert!((s.ssthresh() - 9.0).abs() < 1e-9, "ssthresh = prior cwnd, got {}", s.ssthresh());
        assert!(s.cwnd() < 9.0, "cwnd itself climbs back via slow start");
    }

    #[test]
    fn inc_by_one_bumps_dupthresh() {
        let s = spurious_episode(DupthreshResponse::IncrementBy(1), 2);
        assert_eq!(s.dupthresh(), 4);
    }

    #[test]
    fn avg_with_episode_moves_toward_event_size() {
        // 3 + 7 = 10 dupacks in the episode: avg(3, 10) = 6.5 → 7 (rounded),
        // capped by 0.9·cwnd.
        let s = spurious_episode(DupthreshResponse::AverageWithEpisode, 7);
        assert!(s.dupthresh() > 3, "dupthresh must grow, got {}", s.dupthresh());
    }

    #[test]
    fn ewma_moves_gradually() {
        let s = spurious_episode(DupthreshResponse::Ewma { gain: 0.25 }, 9);
        // (1-0.25)*3 + 0.25*12 = 5.25 → 5, subject to the cwnd cap.
        assert!(s.dupthresh() >= 4, "got {}", s.dupthresh());
        assert!(s.dupthresh() <= 6, "got {}", s.dupthresh());
    }

    #[test]
    fn dsack_without_matching_retransmit_is_ignored() {
        let mut s = DsackSender::new(RenoConfig::default(), DupthreshResponse::IncrementBy(1));
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        out.clear();
        // DSACK for a segment we never retransmitted (e.g. network dup).
        let mut d = ack(1);
        d.dsack = Some((0, 1));
        s.on_ack(&d, SimTime::ZERO + ms(10), &mut out);
        assert_eq!(s.stats().spurious_detected, 0);
        assert_eq!(s.dupthresh(), 3);
    }

    #[test]
    fn labels_match_figure_legend() {
        assert_eq!(DupthreshResponse::NoMovement.label(), "DSACK-NM");
        assert_eq!(DupthreshResponse::IncrementBy(1).label(), "Inc by 1");
        assert_eq!(DupthreshResponse::AverageWithEpisode.label(), "Inc by N");
        assert_eq!(DupthreshResponse::Ewma { gain: 0.25 }.label(), "EWMA");
    }
}
