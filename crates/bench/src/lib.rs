//! Benchmark support: shared scaled-down configurations so the Criterion
//! benches (one per paper figure) finish in minutes while preserving each
//! experiment's structure. The full-scale tables are produced by
//! `cargo run -p experiments --bin repro --release`.

use experiments::runner::MeasurePlan;
use netsim::time::SimDuration;

/// The measurement plan used by the benches: long enough to exit slow start,
/// short enough for Criterion's repeated sampling.
pub fn bench_plan() -> MeasurePlan {
    MeasurePlan { warmup: SimDuration::from_secs(5), window: SimDuration::from_secs(5) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_plan_is_short() {
        assert!(bench_plan().total() <= SimDuration::from_secs(15));
    }
}
