//! Figure 4 bench: the TCP-PR (α, β) parameter grid against TCP-SACK.
//! Prints a reduced grid once, then times one cell.
//!
//! Full-scale reproduction: `cargo run -p experiments --bin repro --release -- fig4`.

use bench::bench_plan;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figures::fig4;

fn print_reference_rows() {
    let cells = fig4::run_figure4(true, &[0.25, 0.995], &[1.0, 3.0], 8, bench_plan(), 1);
    println!("\n{}", fig4::format_table(&cells));
}

fn bench_fig4(c: &mut Criterion) {
    print_reference_rows();
    let mut group = c.benchmark_group("fig4_param_grid");
    group.sample_size(10);
    group.bench_function("one_cell_alpha995_beta3", |b| {
        b.iter(|| fig4::run_figure4(true, &[0.995], &[3.0], 8, bench_plan(), 1))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
