//! Ablation bench: TCP-PR with each design mechanism removed (memorize
//! list, extreme-loss handling, send-time window snapshot), over the same
//! congested dumbbell. Prints the comparison table once, then times the
//! baseline and the most expensive ablation.

use bench::bench_plan;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::ablations::{format_table, run_ablation, run_all, Ablation};

fn bench_ablations(c: &mut Criterion) {
    println!("\n{}", format_table(&run_all(bench_plan(), 3)));
    let mut group = c.benchmark_group("tcp_pr_ablations");
    group.sample_size(10);
    for ablation in [Ablation::None, Ablation::NoMemorize] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{ablation:?}")),
            &ablation,
            |b, &a| b.iter(|| run_ablation(a, bench_plan(), 3)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
