//! Microbenchmarks of the simulator substrate itself: event throughput,
//! and the TCP-PR sender's per-ACK cost (including the Newton iteration for
//! `α^(1/cwnd)`).

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::time::SimTime;
use netsim::{FlowId, LinkConfig, SimBuilder};
use tcp_pr::ewrtt::alpha_root;
use tcp_pr::{TcpPrConfig, TcpPrSender};
use transport::fixed_window::FixedWindowSender;
use transport::host::{attach_flow, FlowOptions};
use transport::sender::{AckEvent, SenderOutput, TcpSenderAlgo};

fn bench_event_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_core");
    group.sample_size(20);
    group.bench_function("one_second_fixed_window_flow", |b| {
        b.iter(|| {
            let mut builder = SimBuilder::new(1);
            let src = builder.add_node();
            let dst = builder.add_node();
            builder.add_duplex(src, dst, LinkConfig::mbps_ms(100.0, 5, 1000));
            let mut sim = builder.build();
            let algo = FixedWindowSender::new(64, netsim::time::SimDuration::from_secs(1));
            attach_flow(&mut sim, FlowId::from_raw(0), src, dst, algo, FlowOptions::default());
            sim.run_until(SimTime::from_secs_f64(1.0));
            sim.stats().events
        })
    });
    group.bench_function("one_second_tcp_pr_flow", |b| {
        b.iter(|| {
            let mut builder = SimBuilder::new(1);
            let src = builder.add_node();
            let dst = builder.add_node();
            builder.add_duplex(src, dst, LinkConfig::mbps_ms(100.0, 5, 1000));
            let mut sim = builder.build();
            let algo = TcpPrSender::new(TcpPrConfig::default());
            attach_flow(&mut sim, FlowId::from_raw(0), src, dst, algo, FlowOptions::default());
            sim.run_until(SimTime::from_secs_f64(1.0));
            sim.stats().events
        })
    });
    group.finish();
}

fn bench_newton(c: &mut Criterion) {
    c.bench_function("alpha_root_newton_2iter", |b| {
        b.iter(|| alpha_root(std::hint::black_box(0.995), std::hint::black_box(37.0), 2))
    });
}

fn bench_sender_ack_path(c: &mut Criterion) {
    c.bench_function("tcp_pr_on_ack", |b| {
        let mut s = TcpPrSender::new(TcpPrConfig::default());
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        let mut now = SimTime::ZERO;
        let mut cum = 0u64;
        b.iter(|| {
            now += netsim::time::SimDuration::from_micros(100);
            cum += 1;
            let ack = AckEvent {
                cum_ack: cum,
                sack: Vec::new(),
                dsack: None,
                echo_timestamp: now,
                echo_tx_count: 1,
                dup: false,
            };
            out.clear();
            s.on_ack(&ack, now, &mut out);
        })
    });
}

criterion_group!(benches, bench_event_loop, bench_newton, bench_sender_ack_path);
criterion_main!(benches);
