//! Figure 2 bench: TCP-PR vs TCP-SACK fairness over dumbbell and
//! parking-lot topologies. Prints the paper-style rows once, then times a
//! representative run per topology.
//!
//! Full-scale reproduction: `cargo run -p experiments --bin repro --release -- fig2`.

use bench::bench_plan;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::figures::fairness::{run_fairness, FairnessParams, FairnessTopology};
use experiments::figures::fig2;
use experiments::topologies::{DumbbellConfig, ParkingLotConfig};

fn print_reference_rows() {
    let series = fig2::run_figure2(bench_plan(), 1, &[2, 8, 16]);
    println!("\n{}", fig2::format_table(&series));
}

fn bench_fig2(c: &mut Criterion) {
    print_reference_rows();
    let mut group = c.benchmark_group("fig2_fairness");
    group.sample_size(10);
    for (label, topology) in [
        ("dumbbell", FairnessTopology::Dumbbell(DumbbellConfig::default())),
        ("parking-lot", FairnessTopology::ParkingLot(ParkingLotConfig::default())),
    ] {
        group.bench_with_input(BenchmarkId::new("8_flows", label), &topology, |b, t| {
            b.iter(|| {
                let params = FairnessParams { plan: bench_plan(), seed: 1, ..Default::default() };
                run_fairness(*t, 8, &params)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
