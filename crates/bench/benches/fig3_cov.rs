//! Figure 3 bench: coefficient of variation vs loss rate (loss induced by
//! shrinking the bottleneck). Prints the paper-style series once, then times
//! one sweep point.
//!
//! Full-scale reproduction: `cargo run -p experiments --bin repro --release -- fig3`.

use bench::bench_plan;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figures::fig3;

fn print_reference_rows() {
    let pts = fig3::run_figure3(true, &[20.0, 8.0], &[1, 2], 8, bench_plan());
    println!("\n{}", fig3::format_table(&pts));
}

fn bench_fig3(c: &mut Criterion) {
    print_reference_rows();
    let mut group = c.benchmark_group("fig3_cov");
    group.sample_size(10);
    group.bench_function("dumbbell_8flows_one_bw", |b| {
        b.iter(|| fig3::run_figure3(true, &[8.0], &[1], 8, bench_plan()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
