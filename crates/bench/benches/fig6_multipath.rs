//! Figure 6 bench: throughput under ε-multipath routing for all six
//! protocols. Prints the paper-style table once (reduced ε set), then times
//! the two headline cells.
//!
//! Full-scale reproduction: `cargo run -p experiments --bin repro --release -- fig6`.

use bench::bench_plan;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::figures::fig6;
use experiments::topologies::MeshConfig;
use experiments::variants::Variant;

fn print_reference_rows() {
    let pts = fig6::run_figure6(10, &Variant::FIGURE6, &[0.0, 500.0], bench_plan(), 1);
    println!("\n{}", fig6::format_table(&pts));
}

fn bench_fig6(c: &mut Criterion) {
    print_reference_rows();
    let mut group = c.benchmark_group("fig6_multipath");
    group.sample_size(10);
    for (variant, eps) in [(Variant::TcpPr, 0.0), (Variant::DsackNm, 0.0), (Variant::TcpPr, 500.0)]
    {
        group.bench_with_input(
            BenchmarkId::new(variant.label().replace(' ', "_"), format!("eps{eps}")),
            &(variant, eps),
            |b, &(v, e)| {
                b.iter(|| fig6::run_multipath_point(v, e, MeshConfig::default(), bench_plan(), 1))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
