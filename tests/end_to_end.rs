//! Cross-crate integration tests: every sender variant driven end-to-end
//! through the simulator, plus determinism and reordering-robustness checks.

use experiments::runner::{measure_window, MeasurePlan};
use experiments::topologies::{dumbbell, DumbbellConfig};
use experiments::variants::Variant;
use netsim::time::{SimDuration, SimTime};
use netsim::{FlowId, LinkConfig, SimBuilder};
use transport::host::{attach_flow, receiver_host, FlowOptions};

fn quick_plan() -> MeasurePlan {
    MeasurePlan { warmup: SimDuration::from_secs(5), window: SimDuration::from_secs(10) }
}

/// Every variant must move substantial data over a clean dumbbell.
#[test]
fn every_variant_fills_a_clean_path() {
    for variant in Variant::ALL {
        let mut d = dumbbell(17, DumbbellConfig::default());
        let h = attach_flow(
            &mut d.sim,
            FlowId::from_raw(0),
            d.src,
            d.dst,
            variant.build(),
            FlowOptions::default(),
        );
        let bytes = measure_window(&mut d.sim, &[h], quick_plan());
        // 30 Mbps for 10 s = 37.5 MB ceiling; expect at least half.
        assert!(
            bytes[0] > 18_000_000,
            "{variant}: only {} bytes over a clean 30 Mbps path",
            bytes[0]
        );
    }
}

/// Identical seeds must give bit-identical results across the whole stack;
/// different seeds must diverge once randomness (link jitter) is in play.
#[test]
fn simulations_are_deterministic() {
    let run = |seed: u64| {
        let mut b = SimBuilder::new(seed);
        let src = b.add_node();
        let dst = b.add_node();
        b.add_link(
            src,
            dst,
            LinkConfig::mbps_ms(10.0, 10, 500).with_jitter(0.3, SimDuration::from_millis(20)),
        );
        b.add_link(dst, src, LinkConfig::mbps_ms(10.0, 10, 500));
        let mut sim = b.build();
        let h = attach_flow(
            &mut sim,
            FlowId::from_raw(0),
            src,
            dst,
            Variant::TcpPr.build(),
            FlowOptions::default(),
        );
        sim.run_until(SimTime::from_secs_f64(10.0));
        (receiver_host(&sim, h.receiver).received_unique_bytes(), sim.stats().events)
    };
    assert_eq!(run(99), run(99));
    assert_ne!(run(99), run(100), "different seeds should differ under jitter");
}

/// Single-link random-jitter reordering: TCP-PR holds throughput while a
/// DUPACK-driven sender collapses (the paper's core claim in miniature,
/// without multipath routing).
#[test]
fn jitter_reordering_hurts_dupack_senders_not_tcp_pr() {
    let run = |variant: Variant| {
        let mut b = SimBuilder::new(23);
        let src = b.add_node();
        let dst = b.add_node();
        // 40% of packets get up to 60 ms of extra delay: heavy reordering,
        // zero loss.
        let fwd =
            LinkConfig::mbps_ms(10.0, 10, 2000).with_jitter(0.4, SimDuration::from_millis(60));
        b.add_link(src, dst, fwd);
        b.add_link(dst, src, LinkConfig::mbps_ms(10.0, 10, 2000));
        let mut sim = b.build();
        let h = attach_flow(
            &mut sim,
            FlowId::from_raw(0),
            src,
            dst,
            variant.build(),
            FlowOptions::default(),
        );
        sim.run_until(SimTime::from_secs_f64(20.0));
        receiver_host(&sim, h.receiver).received_unique_bytes()
    };
    let pr = run(Variant::TcpPr);
    let newreno = run(Variant::NewReno);
    assert!(pr > 2 * newreno, "TCP-PR ({pr} B) must beat NewReno ({newreno} B) under heavy jitter");
    // And TCP-PR should retain a large fraction of the line rate
    // (10 Mbps × 20 s = 25 MB ceiling).
    assert!(pr > 10_000_000, "TCP-PR got only {pr} B under jitter");
}

/// ACK-path reordering alone (reverse-path jitter) must not hurt TCP-PR.
#[test]
fn ack_reordering_is_harmless_to_tcp_pr() {
    let run = |jitter: bool| {
        let mut b = SimBuilder::new(31);
        let src = b.add_node();
        let dst = b.add_node();
        b.add_link(src, dst, LinkConfig::mbps_ms(10.0, 10, 2000));
        let rev = if jitter {
            LinkConfig::mbps_ms(10.0, 10, 2000).with_jitter(0.4, SimDuration::from_millis(60))
        } else {
            LinkConfig::mbps_ms(10.0, 10, 2000)
        };
        b.add_link(dst, src, rev);
        let mut sim = b.build();
        let h = attach_flow(
            &mut sim,
            FlowId::from_raw(0),
            src,
            dst,
            Variant::TcpPr.build(),
            FlowOptions::default(),
        );
        sim.run_until(SimTime::from_secs_f64(20.0));
        receiver_host(&sim, h.receiver).received_unique_bytes()
    };
    let clean = run(false);
    let jittered = run(true);
    assert!(
        jittered as f64 > clean as f64 * 0.85,
        "ACK reordering cost TCP-PR too much: {jittered} vs {clean}"
    );
}

/// DiffServ two-class queueing on a single router reorders a flow's own
/// packets; TCP-PR holds throughput where NewReno degrades (the paper's
/// DiffServ motivation).
#[test]
fn diffserv_reordering_favors_tcp_pr() {
    use netsim::link::DiffservScheduler;
    let run = |variant: Variant| {
        let mut b = SimBuilder::new(13);
        let src = b.add_node();
        let router = b.add_node();
        let dst = b.add_node();
        b.add_duplex(src, router, LinkConfig::mbps_ms(50.0, 5, 500));
        let qos = LinkConfig::mbps_ms(10.0, 20, 200)
            .with_diffserv(0.5, DiffservScheduler::WeightedRoundRobin { hi: 3, lo: 1 });
        b.add_link(router, dst, qos);
        b.add_link(dst, router, LinkConfig::mbps_ms(10.0, 20, 200));
        let mut sim = b.build();
        let h = attach_flow(
            &mut sim,
            FlowId::from_raw(0),
            src,
            dst,
            variant.build(),
            FlowOptions::default(),
        );
        sim.run_until(SimTime::from_secs_f64(15.0));
        receiver_host(&sim, h.receiver).received_unique_bytes()
    };
    let pr = run(Variant::TcpPr);
    let nr = run(Variant::NewReno);
    assert!(pr as f64 > 1.2 * nr as f64, "TCP-PR {pr} vs NewReno {nr} under DiffServ");
    assert!(pr > 10_000_000, "TCP-PR should keep most of the QoS link: {pr}");
}

/// Delayed ACKs (RFC 1122) halve the ACK stream; every sender variant must
/// still fill the path (cumulative ACKs cover two segments at a time).
#[test]
fn delayed_acks_do_not_break_any_variant() {
    for variant in [Variant::TcpPr, Variant::Sack, Variant::NewReno, Variant::TdFr] {
        let mut d = dumbbell(29, DumbbellConfig::default());
        let opts = FlowOptions {
            delayed_ack: Some(SimDuration::from_millis(100)),
            ..FlowOptions::default()
        };
        let h = attach_flow(&mut d.sim, FlowId::from_raw(0), d.src, d.dst, variant.build(), opts);
        let bytes = measure_window(&mut d.sim, &[h], quick_plan());
        assert!(bytes[0] > 12_000_000, "{variant} with delayed ACKs moved only {} bytes", bytes[0]);
    }
}

/// Mixed variants coexist on one bottleneck without anyone starving.
#[test]
fn mixed_variants_coexist() {
    let mut d = dumbbell(5, DumbbellConfig::default());
    let variants = [Variant::TcpPr, Variant::Sack, Variant::NewReno, Variant::TcpPr];
    let handles: Vec<_> = variants
        .iter()
        .enumerate()
        .map(|(i, v)| {
            attach_flow(
                &mut d.sim,
                FlowId::from_raw(i as u32),
                d.src,
                d.dst,
                v.build(),
                FlowOptions::default(),
            )
        })
        .collect();
    let bytes = measure_window(&mut d.sim, &handles, quick_plan());
    let total: u64 = bytes.iter().sum();
    for (i, b) in bytes.iter().enumerate() {
        let share = *b as f64 / total as f64;
        assert!(share > 0.05, "{} starved: {share:.3} of the bottleneck", variants[i].label());
    }
    // The bottleneck should be essentially full.
    assert!(total > 25_000_000, "link underutilized: {total} bytes");
}
