//! Property-based tests over the core data structures and protocol
//! invariants, driven by `proptest`.

use proptest::prelude::*;

use netsim::routing::epsilon_weights;
use netsim::time::{SimDuration, SimTime};
use tcp_pr::ewrtt::alpha_root;
use tcp_pr::{TcpPrConfig, TcpPrSender};
use transport::receiver::{ReceiverConfig, TcpReceiver};
use transport::rto::RtoEstimator;
use transport::sender::{AckEvent, SenderOutput, TcpSenderAlgo};

fn ack(cum: u64, dup: bool) -> AckEvent {
    AckEvent {
        cum_ack: cum,
        sack: Vec::new(),
        dsack: None,
        echo_timestamp: SimTime::ZERO,
        echo_tx_count: 1,
        dup,
    }
}

proptest! {
    /// Any arrival permutation of segments 0..n leaves the receiver having
    /// delivered exactly 0..n in order, with an empty reorder buffer.
    #[test]
    fn receiver_delivers_any_permutation(mut order in proptest::collection::vec(0u64..40, 0..40)) {
        // Make `order` a permutation of a prefix set plus duplicates.
        let mut rx = TcpReceiver::new(ReceiverConfig::default());
        let mut expected: Vec<u64> = order.clone();
        expected.sort_unstable();
        expected.dedup();
        // Deliver (with duplicates allowed), then fill in the gaps.
        for &s in &order {
            let _ = rx.on_data(s);
        }
        let max = expected.last().copied().unwrap_or(0);
        for s in 0..=max {
            let _ = rx.on_data(s);
        }
        order.clear();
        prop_assert_eq!(rx.rcv_nxt(), max + 1);
        prop_assert_eq!(rx.buffered(), 0);
    }

    /// The receiver's cumulative point never decreases and SACK blocks never
    /// cover it.
    #[test]
    fn receiver_cum_monotone(seqs in proptest::collection::vec(0u64..64, 1..200)) {
        let mut rx = TcpReceiver::new(ReceiverConfig::default());
        let mut last = 0;
        for s in seqs {
            let a = rx.on_data(s);
            prop_assert!(a.cum_ack >= last, "cum regressed");
            last = a.cum_ack;
            for (start, end) in a.sack {
                prop_assert!(start >= a.cum_ack, "SACK block below cum");
                prop_assert!(end > start, "empty SACK block");
            }
        }
    }

    /// `alpha_root` stays in (0, 1] and is monotone in cwnd.
    #[test]
    fn alpha_root_bounded(alpha in 0.01f64..0.999, cwnd in 1.0f64..1000.0) {
        let x = alpha_root(alpha, cwnd, 2);
        prop_assert!(x > 0.0 && x <= 1.0 + 1e-12, "root out of range: {}", x);
        // Larger windows decay less per ACK.
        let x2 = alpha_root(alpha, cwnd * 2.0, 2);
        prop_assert!(x2 >= x - 1e-9, "decay must weaken with cwnd");
    }

    /// ε-weights are a probability distribution, monotone non-increasing in
    /// path delay.
    #[test]
    fn epsilon_weights_are_distribution(
        delays_ms in proptest::collection::vec(1u64..500, 1..10),
        eps in 0.0f64..600.0,
    ) {
        let delays: Vec<SimDuration> =
            delays_ms.iter().map(|&d| SimDuration::from_millis(d)).collect();
        let w = epsilon_weights(&delays, eps);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for (i, a) in delays.iter().enumerate() {
            for (j, b) in delays.iter().enumerate() {
                if a <= b {
                    prop_assert!(w[i] >= w[j] - 1e-12, "weight not monotone in delay");
                }
            }
        }
    }

    /// The RTO estimator always stays within its clamps under arbitrary
    /// sample/backoff interleavings.
    #[test]
    fn rto_respects_clamps(events in proptest::collection::vec((0u8..3, 1u64..5_000), 1..100)) {
        let mut est = RtoEstimator::rfc2988();
        for (kind, ms) in events {
            match kind {
                0 => est.on_sample(SimDuration::from_millis(ms)),
                1 => est.backoff(),
                _ => est.reset_backoff(),
            }
            prop_assert!(est.rto() >= SimDuration::from_secs(1));
            prop_assert!(est.rto() <= SimDuration::from_secs(60));
        }
    }

    /// TCP-PR invariants hold under arbitrary interleavings of ACKs
    /// (including stale and duplicate ones) and timer fires: cwnd ≥ 1,
    /// internal bookkeeping consistent, no transmission of an
    /// already-outstanding packet.
    #[test]
    fn tcp_pr_survives_arbitrary_event_sequences(
        events in proptest::collection::vec((0u8..4, 0u64..100, 1u64..2_000), 1..250),
    ) {
        let mut s = TcpPrSender::new(TcpPrConfig::default());
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        let mut now = SimTime::ZERO;
        let mut cum_sent = 0u64;
        for (kind, arg, dt_ms) in events {
            now += SimDuration::from_millis(dt_ms);
            out.clear();
            match kind {
                0 => {
                    // A plausible cumulative ACK: anywhere up to snd_nxt.
                    let cum = arg.min(s.book().snd_nxt());
                    cum_sent = cum_sent.max(cum);
                    s.on_ack(&ack(cum, false), now, &mut out);
                }
                1 => s.on_ack(&ack(cum_sent, true), now, &mut out), // dupack
                2 => s.on_timer(now, &mut out),
                _ => {
                    // Stale, re-ordered ACK from the past.
                    let cum = arg.min(cum_sent);
                    s.on_ack(&ack(cum, true), now, &mut out);
                }
            }
            prop_assert!(s.cwnd() >= 1.0, "cwnd fell below 1");
            prop_assert!(s.cwnd() <= s.config().max_cwnd + 1e-9);
            s.book().check_invariants();
            // No duplicate seq among this callback's transmissions.
            let mut seqs: Vec<u64> = out.transmissions().iter().map(|t| t.seq).collect();
            let n = seqs.len();
            seqs.sort_unstable();
            seqs.dedup();
            prop_assert_eq!(seqs.len(), n, "duplicate transmission in one callback");
        }
    }

    /// The ewrtt estimate never falls below the most recent sample.
    #[test]
    fn ewrtt_dominates_latest_sample(samples in proptest::collection::vec(1u64..3_000, 1..200)) {
        let mut est = tcp_pr::ewrtt::EwrttEstimator::new(0.995, 2);
        for ms in samples {
            let sample = SimDuration::from_millis(ms);
            let v = est.on_sample(sample, 10.0);
            prop_assert!(v >= sample, "estimate {v} below sample {sample}");
        }
    }

    /// Every baseline sender survives arbitrary ACK/dupack/timer
    /// interleavings without panicking, with cwnd ≥ 1 and a sane flight.
    #[test]
    fn baseline_senders_survive_arbitrary_event_sequences(
        variant_idx in 0usize..11,
        events in proptest::collection::vec((0u8..4, 0u64..120, 1u64..2_000), 1..200),
    ) {
        use experiments::variants::Variant;
        let variant = Variant::ALL[variant_idx];
        let mut s = variant.build();
        let mut out = SenderOutput::new();
        s.on_start(SimTime::ZERO, &mut out);
        let mut now = SimTime::ZERO;
        let mut highest_plausible = 0u64;
        // Track a very loose upper bound on what could have been sent.
        let mut sent_bound = out.transmissions().len() as u64;
        for (kind, arg, dt_ms) in events {
            now += SimDuration::from_millis(dt_ms);
            out.clear();
            match kind {
                0 => {
                    let cum = arg.min(sent_bound);
                    highest_plausible = highest_plausible.max(cum);
                    let mut a = ack(cum, false);
                    a.echo_timestamp = now - SimDuration::from_millis(1);
                    s.on_ack(&a, now, &mut out);
                }
                1 => {
                    let mut a = ack(highest_plausible, true);
                    // SACK info just above the cumulative point.
                    a.sack = vec![(highest_plausible + 1, highest_plausible + 2 + (arg % 5))];
                    s.on_ack(&a, now, &mut out);
                }
                2 => s.on_timer(now, &mut out),
                _ => {
                    let mut a = ack(arg.min(highest_plausible), true);
                    a.dsack = Some((arg.min(highest_plausible), arg.min(highest_plausible) + 1));
                    s.on_ack(&a, now, &mut out);
                }
            }
            sent_bound += out.transmissions().len() as u64;
            prop_assert!(s.cwnd() >= 1.0, "{variant}: cwnd fell to {}", s.cwnd());
            prop_assert!(s.cwnd().is_finite(), "{variant}: cwnd not finite");
            prop_assert!(s.in_flight() < 1_000_000, "{variant}: flight exploded");
        }
    }
}
