//! The paper's headline claims, checked end-to-end at reduced scale.
//! (`EXPERIMENTS.md` records the full-scale numbers from the `repro`
//! binary; these tests guard the *shape* in CI time.)

use experiments::figures::fairness::{run_fairness, FairnessParams, FairnessTopology};
use experiments::figures::fig6::run_multipath_point;
use experiments::runner::MeasurePlan;
use experiments::topologies::{DumbbellConfig, MeshConfig, ParkingLotConfig};
use experiments::variants::Variant;
use netsim::time::SimDuration;
use tcp_pr::TcpPrConfig;

fn plan() -> MeasurePlan {
    MeasurePlan { warmup: SimDuration::from_secs(10), window: SimDuration::from_secs(20) }
}

/// Section 5 / Figure 6: under full multipath routing (ε = 0) TCP-PR keeps
/// high throughput while every DUPACK-driven variant collapses or trails.
#[test]
fn claim_tcp_pr_dominates_under_persistent_reordering() {
    let mesh = MeshConfig::default();
    let pr = run_multipath_point(Variant::TcpPr, 0.0, mesh, plan(), 3);
    assert!(pr.mbps > 15.0, "TCP-PR aggregates paths: {}", pr.mbps);
    for v in [Variant::DsackNm, Variant::IncByN, Variant::Ewma, Variant::Sack, Variant::NewReno] {
        let other = run_multipath_point(v, 0.0, mesh, plan(), 3);
        assert!(
            pr.mbps > 2.0 * other.mbps,
            "{v} got {} Mbps vs TCP-PR {} at eps=0",
            other.mbps,
            pr.mbps
        );
    }
}

/// Figure 6, ε = 500: single-path routing — every variant performs alike.
#[test]
fn claim_all_equal_without_reordering() {
    let mesh = MeshConfig::default();
    let throughputs: Vec<f64> = Variant::FIGURE6
        .iter()
        .map(|&v| run_multipath_point(v, 500.0, mesh, plan(), 3).mbps)
        .collect();
    let min = throughputs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = throughputs.iter().copied().fold(0.0, f64::max);
    assert!(min > 0.75 * max, "at eps=500 all variants should be within 25%: {throughputs:?}");
    assert!(min > 7.0, "all should nearly fill the 10 Mbps path: {throughputs:?}");
}

/// Section 4 / Figure 2: with β = 3, TCP-PR and TCP-SACK share a dumbbell
/// bottleneck with both protocol means in a band around 1.
#[test]
fn claim_fairness_with_sack_dumbbell() {
    let params = FairnessParams { plan: plan(), seed: 2, ..Default::default() };
    let r = run_fairness(FairnessTopology::Dumbbell(DumbbellConfig::default()), 8, &params);
    assert!(r.mean_pr > 0.6 && r.mean_pr < 1.4, "mean_pr = {}", r.mean_pr);
    assert!(r.mean_sack > 0.6 && r.mean_sack < 1.4, "mean_sack = {}", r.mean_sack);
}

/// Figure 2 (right): same fairness claim over the parking-lot topology with
/// the paper's cross traffic.
#[test]
fn claim_fairness_with_sack_parking_lot() {
    let params = FairnessParams { plan: plan(), seed: 2, ..Default::default() };
    let r = run_fairness(FairnessTopology::ParkingLot(ParkingLotConfig::default()), 8, &params);
    assert!(r.mean_pr > 0.45 && r.mean_pr < 1.55, "mean_pr = {}", r.mean_pr);
    assert!(r.mean_sack > 0.45 && r.mean_sack < 1.55, "mean_sack = {}", r.mean_sack);
}

/// Figure 4: β = 1 is too aggressive (TCP-SACK wins share); β = 3 is fair.
#[test]
fn claim_beta_one_aggressive_beta_three_fair() {
    let run = |beta: f64| {
        let params = FairnessParams {
            plan: plan(),
            seed: 4,
            pr_config: TcpPrConfig::with_alpha_beta(0.995, beta),
        };
        run_fairness(FairnessTopology::Dumbbell(DumbbellConfig::default()), 8, &params)
    };
    let at1 = run(1.0);
    let at3 = run(3.0);
    assert!(
        at1.mean_sack > at3.mean_sack,
        "β=1 must favor SACK more than β=3: {} vs {}",
        at1.mean_sack,
        at3.mean_sack
    );
    assert!(at3.mean_pr > 0.6, "β=3 keeps TCP-PR healthy: {}", at3.mean_pr);
}

/// TCP-PR vs TCP-PR: identical flows converge to equal shares (the AIMD
/// stability argument the paper leans on, [4][7]).
#[test]
fn claim_pr_flows_share_equally_with_each_other() {
    use experiments::runner::{flow_ids, measure_window};
    use netsim::FlowId;
    use tcp_pr::{TcpPrConfig, TcpPrSender};
    use transport::host::{attach_flow, FlowOptions};

    let mut d = experiments::topologies::dumbbell(21, DumbbellConfig::default());
    let ids = flow_ids(0, 4);
    let handles: Vec<_> = ids
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            attach_flow(
                &mut d.sim,
                f,
                d.src,
                d.dst,
                TcpPrSender::new(TcpPrConfig::default()),
                FlowOptions {
                    start_at: experiments::runner::staggered_start(i, 21),
                    ..Default::default()
                },
            )
        })
        .collect();
    let _ = FlowId::from_raw(0);
    let bytes = measure_window(&mut d.sim, &handles, plan());
    let xs: Vec<f64> = bytes.iter().map(|&b| b as f64).collect();
    let fairness = experiments::metrics::jain_fairness(&xs);
    assert!(fairness > 0.85, "PR flows must converge among themselves: {fairness:.3} ({xs:?})");
}

/// Robustness of the α parameter (the paper: performance is insensitive to
/// α in a wide range).
#[test]
fn claim_alpha_insensitivity() {
    let run = |alpha: f64| {
        let params = FairnessParams {
            plan: plan(),
            seed: 6,
            pr_config: TcpPrConfig::with_alpha_beta(alpha, 3.0),
        };
        run_fairness(FairnessTopology::Dumbbell(DumbbellConfig::default()), 8, &params).mean_pr
    };
    let lo = run(0.25);
    let hi = run(0.995);
    assert!((lo - hi).abs() < 0.35, "α sweep should be mild: {lo} vs {hi}");
    assert!(lo > 0.5 && hi > 0.5);
}
