//! # tcp-pr-repro — umbrella crate
//!
//! Re-exports the workspace crates so the examples and integration tests
//! can use one dependency. See the individual crates for documentation:
//!
//! - [`netsim`] — the discrete-event network simulator substrate,
//! - [`transport`] — sender/receiver plumbing,
//! - [`tcp_pr`] — the paper's algorithm,
//! - [`baselines`] — every comparison TCP variant,
//! - [`experiments`] — topologies, metrics and figure harnesses.

pub use baselines;
pub use experiments;
pub use netsim;
pub use tcp_pr;
pub use transport;
